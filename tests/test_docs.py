"""Documentation guarantees: runnable doctests + drift checks.

Two promises made by the docs satellite are enforced here (and again in the
CI ``docs`` job, which also runs ``tools/check_docs.py`` standalone):

* the usage examples in the public package docstrings (``repro.engine``,
  ``repro.sweep``, ``repro.backend``, ``repro.layout`` and the reader
  classes) actually run, and
* ``docs/cli.md`` matches the live CLI ``--help`` output in both
  directions, documents every ``REPRO_*`` env var, and no markdown link in
  ``README.md`` / ``docs/`` is broken.
"""

import doctest
import importlib
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import check_docs  # noqa: E402  (tools/ is not a package)

DOCTEST_MODULES = [
    "repro.backend",
    "repro.engine",
    "repro.sweep",
    "repro.layout",
    "repro.layout.reader",
    "repro.layout.indexed",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_public_docstring_examples_run(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False,
                             optionflags=doctest.NORMALIZE_WHITESPACE)
    assert result.attempted > 0, f"{module_name} has no doctest examples"
    assert result.failed == 0, (
        f"{result.failed}/{result.attempted} doctest example(s) in "
        f"{module_name} failed — run `python -m doctest` on it for details")


class TestDocsDrift:
    def test_cli_reference_matches_help_output(self):
        assert check_docs.check_cli_docs(REPO_ROOT) == []

    def test_every_env_var_documented(self):
        assert check_docs.check_env_vars(REPO_ROOT) == []

    def test_markdown_links_resolve(self):
        assert check_docs.check_links(REPO_ROOT) == []

    def test_checker_detects_missing_flag(self, tmp_path):
        """The drift check itself must actually bite."""
        docs = tmp_path / "docs"
        docs.mkdir()
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (docs / "cli.md").write_text(
            "## campaign-report\n\nonly `--store` documented\n")
        errors = check_docs.check_cli_docs(str(tmp_path))
        assert any("--thumbnail-width" in error for error in errors)
        assert any("no '## generate' section" in error for error in errors)

    def test_checker_detects_phantom_flag(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "cli.md").write_text("## experiments\n\n`--no-such-flag` "
                                     "`--skip-ablations` `--preset` `--seed`\n")
        errors = check_docs.check_cli_docs(str(tmp_path))
        assert any("--no-such-flag" in error and "does not report" in error
                   for error in errors)

    def test_checker_detects_broken_link(self, tmp_path):
        (tmp_path / "README.md").write_text("[gone](docs/missing.md)\n")
        errors = check_docs.check_links(str(tmp_path))
        assert any("broken link" in error for error in errors)
