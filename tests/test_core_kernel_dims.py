"""Tests for the resolution-limit kernel dimensioning (Eq. (10))."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel_dims import (
    kernel_dimensions,
    kernel_half_width,
    resolution_nm,
    suggest_kernel_order,
)


class TestKernelHalfWidth:
    def test_paper_example(self):
        """lambda = 193 nm, NA = 1.35: a 1000 nm tile needs ~14 samples to the cut-off."""
        assert kernel_half_width(1000.0) == 13  # floor(1000 * 2 * 1.35 / 193) = floor(13.99)

    def test_scales_linearly_with_extent(self):
        assert kernel_half_width(2000.0) == pytest.approx(2 * 13, abs=1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            kernel_half_width(0.0)
        with pytest.raises(ValueError):
            kernel_half_width(100.0, wavelength_nm=0.0)


class TestKernelDimensions:
    def test_paper_ratio(self):
        """Eq. (10): at 1 nm/pixel, m ~= 0.028 * W."""
        n, m = kernel_dimensions(2000, 2000, pixel_size_nm=1.0)
        assert m == pytest.approx(0.028 * 2000, rel=0.05)
        assert n == m

    def test_always_odd(self):
        for width in (50, 64, 100, 128, 200, 256):
            n, m = kernel_dimensions(width, width, pixel_size_nm=4.0)
            # odd unless clamped by the tile size itself
            if m < width:
                assert m % 2 == 1
            if n < width:
                assert n % 2 == 1

    def test_clamped_by_tile_size(self):
        n, m = kernel_dimensions(16, 16, pixel_size_nm=100.0)
        assert n <= 16 and m <= 16

    def test_rectangular_tiles(self):
        n, m = kernel_dimensions(128, 64, pixel_size_nm=8.0)
        assert n < m  # height 64 px -> fewer rows than the 128 px width

    def test_pixel_size_equivalence(self):
        """Same physical extent -> same kernel window regardless of sampling."""
        assert kernel_dimensions(128, 128, pixel_size_nm=8.0) == \
            kernel_dimensions(256, 256, pixel_size_nm=4.0)

    def test_larger_na_needs_larger_window(self):
        small = kernel_dimensions(128, 128, numerical_aperture=0.9, pixel_size_nm=8.0)
        large = kernel_dimensions(128, 128, numerical_aperture=1.35, pixel_size_nm=8.0)
        assert large[0] >= small[0]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            kernel_dimensions(0, 10)
        with pytest.raises(ValueError):
            kernel_dimensions(10, 10, pixel_size_nm=0.0)

    @given(width=st.integers(16, 512), pixel=st.floats(1.0, 16.0))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_physical_extent(self, width, pixel):
        n1, m1 = kernel_dimensions(width, width, pixel_size_nm=pixel)
        n2, m2 = kernel_dimensions(width * 2, width * 2, pixel_size_nm=pixel)
        assert m2 >= m1 and n2 >= n1


class TestResolutionAndOrder:
    def test_resolution_paper_value(self):
        """R = 0.5 * 193 / 1.35 ~= 71.5 nm."""
        assert resolution_nm() == pytest.approx(71.48, abs=0.1)

    def test_resolution_invalid_na(self):
        with pytest.raises(ValueError):
            resolution_nm(numerical_aperture=0.0)

    def test_suggest_kernel_order_bounds(self):
        assert 4 <= suggest_kernel_order((15, 15)) <= 60
        assert suggest_kernel_order((57, 57), max_order=60) == 60
        assert suggest_kernel_order((3, 3)) == 4
