"""Tests for the focus-exposure / process-window analysis (repro.optics.process_window)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optics import OpticsConfig
from repro.optics.process_window import (
    FocusExposurePoint,
    ProcessWindowAnalyzer,
    ProcessWindowResult,
    _longest_printed_run_loop,
    bossung_curves,
    longest_printed_run,
    measure_cd,
    widest_feature_row,
)
from repro.optics.source import CircularSource

TILE = 48
PIXEL = 20.0


@pytest.fixture(scope="module")
def line_mask():
    """A single vertical line of width 8 px (160 nm) through the tile centre."""
    mask = np.zeros((TILE, TILE))
    mask[4:-4, TILE // 2 - 4: TILE // 2 + 4] = 1.0
    return mask


@pytest.fixture(scope="module")
def analyzer():
    config = OpticsConfig(tile_size_px=TILE, pixel_size_nm=PIXEL, max_socs_order=12)
    return ProcessWindowAnalyzer(config, source=CircularSource(sigma=0.6))


@pytest.fixture(scope="module")
def window(analyzer, line_mask):
    return analyzer.run(line_mask, target_cd_nm=160.0,
                        focus_values_nm=(-100.0, 0.0, 100.0),
                        dose_values=(0.85, 1.0, 1.15), tolerance=0.25)


class TestMeasureCD:
    def test_width_of_a_perfect_line(self):
        resist = np.zeros((10, 10))
        resist[:, 3:7] = 1
        assert measure_cd(resist, pixel_size_nm=5.0) == pytest.approx(20.0)

    def test_zero_when_nothing_prints(self):
        assert measure_cd(np.zeros((10, 10))) == 0.0

    def test_picks_widest_run(self):
        resist = np.zeros((5, 12))
        resist[2, 1:3] = 1
        resist[2, 5:11] = 1
        assert measure_cd(resist, row=2) == 6.0

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.booleans(), max_size=300))
    def test_vectorized_run_scan_matches_reference_loop(self, bits):
        """Property: the np.diff scan agrees with the pre-vectorisation loop."""
        line = np.array(bits, dtype=bool)
        assert longest_printed_run(line) == _longest_printed_run_loop(line)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=40))
    def test_vectorized_measure_cd_matches_loop_on_random_resists(
            self, seed, height, width):
        resist = np.random.default_rng(seed).random((height, width)) > 0.6
        for row in range(height):
            expected = _longest_printed_run_loop(resist[row]) * 2.5
            assert measure_cd(resist, row=row, pixel_size_nm=2.5) == expected

    def test_run_scan_rejects_2d(self):
        with pytest.raises(ValueError):
            longest_printed_run(np.zeros((3, 3), dtype=bool))

    def test_widest_feature_row(self):
        resist = np.zeros((6, 12))
        resist[1, 2:5] = 1
        resist[4, 3:10] = 1
        assert widest_feature_row(resist) == 4
        assert widest_feature_row(np.zeros((7, 9))) == 3  # centre fallback
        with pytest.raises(ValueError):
            widest_feature_row(np.zeros(5))

    def test_row_selection_and_validation(self):
        resist = np.zeros((6, 6))
        resist[1, :] = 1
        assert measure_cd(resist, row=1) == 6.0
        assert measure_cd(resist, row=4) == 0.0
        with pytest.raises(ValueError):
            measure_cd(resist, row=10)
        with pytest.raises(ValueError):
            measure_cd(np.zeros((2, 2, 2)))


class TestProcessWindow:
    def test_matrix_covers_all_conditions(self, window):
        assert len(window.points) == 9
        matrix = window.cd_matrix()
        assert set(matrix) == {-100.0, 0.0, 100.0}
        assert set(matrix[0.0]) == {0.85, 1.0, 1.15}

    def test_nominal_condition_prints_near_target(self, window):
        nominal = [p for p in window.points if p.focus_nm == 0.0 and p.dose == 1.0][0]
        assert nominal.cd_nm == pytest.approx(160.0, rel=0.3)

    def test_higher_dose_prints_wider(self, window):
        at_focus = {p.dose: p.cd_nm for p in window.points if p.focus_nm == 0.0}
        assert at_focus[1.15] >= at_focus[1.0] >= at_focus[0.85]

    def test_through_focus_symmetry(self, window):
        """Without other aberrations, +z and -z defocus print the same CD (Bossung symmetry)."""
        at_dose = {p.focus_nm: p.cd_nm for p in window.points if p.dose == 1.0}
        assert at_dose[100.0] == pytest.approx(at_dose[-100.0], abs=PIXEL)

    def test_defocus_changes_the_print(self, analyzer, line_mask):
        """A large defocus must change the printed CD relative to best focus."""
        wide = analyzer.run(line_mask, target_cd_nm=160.0,
                            focus_values_nm=(0.0, 250.0), dose_values=(1.0,), tolerance=0.25)
        at_dose = {p.focus_nm: p.cd_nm for p in wide.points}
        assert at_dose[250.0] != pytest.approx(at_dose[0.0], abs=1e-9)

    def test_window_fraction_bounds(self, window):
        assert 0.0 <= window.window_fraction() <= 1.0
        assert window.window_fraction() > 0.0

    def test_depth_of_focus_and_exposure_latitude(self, window):
        assert window.depth_of_focus_nm(dose=1.0) >= 0.0
        assert window.exposure_latitude(focus_nm=0.0) >= 0.0

    def test_in_spec_logic(self):
        result = ProcessWindowResult(points=(FocusExposurePoint(0.0, 1.0, 100.0),),
                                     target_cd_nm=100.0, tolerance=0.1)
        assert result.in_spec(result.points[0])
        off = FocusExposurePoint(0.0, 1.0, 150.0)
        assert not result.in_spec(off)

    def test_empty_window_fraction(self):
        result = ProcessWindowResult(points=(), target_cd_nm=100.0, tolerance=0.1)
        assert result.window_fraction() == 0.0
        assert result.depth_of_focus_nm(1.0) == 0.0
        assert result.exposure_latitude() == 0.0

    def test_input_validation(self, analyzer, line_mask):
        with pytest.raises(ValueError):
            analyzer.run(line_mask, target_cd_nm=0.0)
        with pytest.raises(ValueError):
            analyzer.run(line_mask, target_cd_nm=100.0, tolerance=1.5)
        with pytest.raises(ValueError):
            analyzer.run(line_mask, target_cd_nm=100.0, dose_values=())
        with pytest.raises(ValueError):
            analyzer.run(line_mask, target_cd_nm=100.0, dose_values=(0.0,))
        with pytest.raises(ValueError):
            analyzer.run(np.zeros((2, 2, 2)), target_cd_nm=100.0)


class TestBossung:
    def test_curves_sorted_by_focus(self, window):
        curves = bossung_curves(window)
        assert set(curves) == {0.85, 1.0, 1.15}
        for curve in curves.values():
            focuses = [focus for focus, _ in curve]
            assert focuses == sorted(focuses)
            assert len(curve) == 3
