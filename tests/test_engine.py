"""Regression tests for the unified execution engine layer.

Pinned guarantees:

* the vectorised batched core is numerically equivalent to the per-tile
  reference path (bit-for-bit within floating-point rounding) across dtypes,
  odd tile sizes, truncated kernel orders, chunk boundaries and the
  band-limited fast-evaluation grid,
* split -> image -> stitch round-trips arbitrary layouts, is exactly the
  per-tile path when no guard band is needed, and has vanishing seam error
  in the guarded interior,
* the kernel-bank cache computes the TCC and the SOCS decomposition at most
  once per optics fingerprint per process (and round-trips through disk).
"""

import numpy as np
import pytest

from repro.core import KernelBankEngine
from repro.engine import (
    ExecutionEngine,
    KernelBankCache,
    TilingSpec,
    batch_chunk_size,
    batched_aerial_from_kernels,
    extract_tiles,
    optics_fingerprint,
    plan_tiles,
    stitch_tiles,
)
from repro.optics import OpticsConfig, LithographySimulator
from repro.optics.aerial import aerial_from_kernels
from repro.optics.pupil import Pupil
from repro.optics.socs import SOCSKernels
from repro.optics.source import AnnularSource, CircularSource, PixelatedSource
from repro.utils.imaging import fourier_resize, fourier_resize_batch

# A fine-pitch configuration whose kernel window (7x7) is far below the tile
# size, so the band-limited fast evaluation path actually engages (2n << H).
FINE = OpticsConfig(tile_size_px=64, pixel_size_nm=4.0, max_socs_order=None)


@pytest.fixture(scope="module")
def fine_engine():
    return ExecutionEngine.for_optics(FINE, source=CircularSource(sigma=0.6),
                                      cache=KernelBankCache())


# Physically sensible tiling scale: 96 px tiles of 8 nm pixels (768 nm fields,
# several resolution elements across) so guard-band behaviour is meaningful.
PHYSICAL = OpticsConfig(tile_size_px=96, pixel_size_nm=8.0, max_socs_order=24)


@pytest.fixture(scope="module")
def physical_engine():
    return ExecutionEngine.for_optics(PHYSICAL, source=AnnularSource(0.5, 0.8),
                                      cache=KernelBankCache())


@pytest.fixture(scope="module")
def apodized_engine():
    return ExecutionEngine.for_optics(PHYSICAL, source=AnnularSource(0.5, 0.8),
                                      pupil=Pupil(apodization=4.0),
                                      cache=KernelBankCache())


@pytest.fixture(scope="module")
def random_masks():
    return (np.random.default_rng(42).random((6, 64, 64)) > 0.7).astype(float)


def _looped_reference(masks, kernels):
    return np.stack([aerial_from_kernels(np.asarray(m, dtype=float), kernels)
                     for m in masks], axis=0)


class TestBatchedEquivalence:
    def test_matches_per_tile_path(self, tiny_simulator, tiny_masks):
        kernels = tiny_simulator.kernels.kernels
        reference = _looped_reference(tiny_masks, kernels)
        batched = batched_aerial_from_kernels(np.asarray(tiny_masks, dtype=float), kernels)
        np.testing.assert_allclose(batched, reference, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.uint8])
    def test_dtypes(self, fine_engine, random_masks, dtype):
        masks = random_masks.astype(dtype)
        reference = _looped_reference(masks, fine_engine.kernels)
        np.testing.assert_allclose(fine_engine.aerial_batch(masks), reference,
                                   rtol=1e-10, atol=1e-12)

    def test_odd_tile_size(self, fine_engine):
        masks = (np.random.default_rng(3).random((4, 47, 47)) > 0.6).astype(float)
        reference = _looped_reference(masks, fine_engine.kernels)
        np.testing.assert_allclose(fine_engine.aerial_batch(masks), reference,
                                   rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("order", [1, 3])
    def test_truncated_orders(self, fine_engine, random_masks, order):
        truncated = fine_engine.truncate(order)
        reference = _looped_reference(random_masks, truncated.kernels)
        np.testing.assert_allclose(truncated.aerial_batch(random_masks), reference,
                                   rtol=1e-10, atol=1e-12)

    def test_band_limited_fast_path_engages_and_is_exact(self, fine_engine, random_masks):
        n, m = fine_engine.kernel_shape
        assert 2 * n <= 64 and 2 * m <= 64  # the fast grid really is smaller
        fast = batched_aerial_from_kernels(random_masks, fine_engine.kernels,
                                           band_limited=True)
        direct = batched_aerial_from_kernels(random_masks, fine_engine.kernels,
                                             band_limited=False)
        np.testing.assert_allclose(fast, direct, rtol=1e-10, atol=1e-12)

    def test_chunking_is_invisible(self, fine_engine, random_masks):
        whole = fine_engine.aerial_batch(random_masks)
        r, n, m = fine_engine.kernels.shape
        itemsize = 16  # complex128
        tiny_budget = r * (2 * n) * (2 * m) * itemsize  # forces one mask per chunk
        chunked = batched_aerial_from_kernels(random_masks, fine_engine.kernels,
                                              backend=fine_engine.backend,
                                              max_chunk_bytes=tiny_budget)
        np.testing.assert_allclose(chunked, whole, rtol=0, atol=0)
        assert batch_chunk_size(6, r, 2 * n, 2 * m, tiny_budget, itemsize) == 1
        # The byte-denominated budget fits twice the masks at single precision.
        assert batch_chunk_size(6, r, 2 * n, 2 * m, 2 * tiny_budget, 8) == 4

    def test_empty_batch(self, fine_engine):
        assert fine_engine.aerial_batch(np.zeros((0, 64, 64))).shape == (0, 64, 64)

    def test_simulator_batch_matches_per_tile(self, tiny_simulator, tiny_masks):
        batched = tiny_simulator.aerial_batch(np.asarray(tiny_masks, dtype=float))
        reference = np.stack([tiny_simulator.aerial(mask) for mask in tiny_masks])
        np.testing.assert_allclose(batched, reference, rtol=1e-10, atol=1e-12)
        resist = tiny_simulator.resist_batch(np.asarray(tiny_masks, dtype=float))
        assert set(np.unique(resist)).issubset({0, 1})

    def test_simulator_batch_rejects_wrong_tile(self, tiny_simulator):
        with pytest.raises(ValueError):
            tiny_simulator.aerial_batch(np.zeros((2, 8, 8)))

    def test_baseline_predict_batch_matches_per_tile(self, tiny_masks):
        from repro.baselines.tempo import TempoModel

        model = TempoModel(work_resolution=16, seed=0)
        masks = np.asarray(tiny_masks[:2], dtype=float)
        batched = model.predict_batch(masks)
        looped = np.stack([model.predict_aerial(mask) for mask in masks])
        np.testing.assert_allclose(batched, looped, rtol=1e-9, atol=1e-10)


class TestTruncate:
    def test_rejects_order_beyond_bank(self, fine_engine):
        with pytest.raises(ValueError, match="only holds|available"):
            fine_engine.truncate(fine_engine.order + 1)
        with pytest.raises(ValueError):
            fine_engine.truncate(0)

    def test_kernel_bank_engine_rejects_overlong_truncate(self, fine_engine):
        engine = KernelBankEngine(fine_engine.kernels)
        with pytest.raises(ValueError, match="only holds"):
            engine.truncate(engine.order + 1)
        assert engine.truncate(engine.order).order == engine.order


class TestTiling:
    def test_split_stitch_identity_on_mask(self):
        layout = np.random.default_rng(0).random((120, 88))
        spec = TilingSpec(tile_px=48, guard_px=10)
        tiles, placements = extract_tiles(layout, spec)
        assert tiles.shape == (len(placements), 48, 48)
        roundtrip = stitch_tiles(tiles, placements, 120, 88, spec)
        np.testing.assert_array_equal(roundtrip, layout)

    def test_plan_covers_layout_once(self):
        spec = TilingSpec(tile_px=32, guard_px=4)
        placements = plan_tiles(70, 50, spec)
        coverage = np.zeros((70, 50), dtype=int)
        for place in placements:
            coverage[place.row:place.row + place.core_h,
                     place.col:place.col + place.core_w] += 1
        np.testing.assert_array_equal(coverage, 1)

    def test_guardless_divisible_layout_equals_per_tile_imaging(self, fine_engine):
        layout = (np.random.default_rng(1).random((128, 192)) > 0.7).astype(float)
        spec = TilingSpec(tile_px=64, guard_px=0)
        result = fine_engine.image_layout(layout, tiling=spec)
        tiles, placements = extract_tiles(layout, spec)
        reference = stitch_tiles(_looped_reference(tiles, fine_engine.kernels),
                                 placements, 128, 192, spec)
        np.testing.assert_allclose(result.aerial, reference, rtol=1e-10, atol=1e-12)
        np.testing.assert_array_equal(
            result.resist, fine_engine.resist_model.develop(result.aerial))

    @staticmethod
    def _shifted_grid_seam_error(engine, guard_px: int) -> float:
        """Max interior disagreement between two tile-grid placements.

        The layout is imaged twice with tile boundaries in different places
        (by zero-padding the top-left corner); where the two tilings disagree
        is exactly the seam error the guard band is meant to suppress.
        """
        layout = (np.random.default_rng(2).random((220, 220)) > 0.75).astype(float)
        spec = TilingSpec(tile_px=96, guard_px=guard_px)
        base = engine.image_layout(layout, tiling=spec).aerial
        shift = 13  # moves every interior seam to a different place
        padded = np.zeros((220 + shift, 220 + shift))
        padded[shift:, shift:] = layout
        shifted = engine.image_layout(padded, tiling=spec).aerial[shift:, shift:]
        interior = (slice(48, -48), slice(48, -48))
        return float(np.abs(base[interior] - shifted[interior]).max() / base.max())

    def test_seam_error_decays_with_guard(self, physical_engine):
        """Hard-pupil optics: seam error decays algebraically with the guard.

        The optical PSF has unbounded support (hard pupil edge), so the seam
        error cannot reach floating-point zero; the guarantee is monotone
        decay to the sub-percent level at production guard widths.
        """
        narrow = self._shifted_grid_seam_error(physical_engine, 12)
        wide = self._shifted_grid_seam_error(physical_engine, 40)
        assert wide < narrow
        assert wide < 1.5e-2  # measured 3.9e-3; generous margin

    def test_apodized_pupil_suppresses_seams(self, apodized_engine):
        """A smooth pupil edge makes the PSF decay fast: seams all but vanish."""
        wide = self._shifted_grid_seam_error(apodized_engine, 40)
        assert wide < 3e-3  # measured 6.4e-4; generous margin

    def test_non_tile_sized_layout_roundtrip(self, fine_engine):
        """The acceptance scenario (scaled): a 1024x768-proportioned layout."""
        layout = (np.random.default_rng(5).random((192, 256)) > 0.8).astype(float)
        result = fine_engine.image_layout(layout, tile_px=64, guard_px=16)
        assert result.shape == (192, 256)
        assert result.num_tiles == plan_tiles(192, 256, result.tiling).__len__()
        assert result.aerial.min() >= -1e-12
        assert set(np.unique(result.resist)).issubset({0, 1})

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            TilingSpec(tile_px=0)
        with pytest.raises(ValueError):
            TilingSpec(tile_px=32, guard_px=16)  # no core left
        with pytest.raises(ValueError):
            TilingSpec(tile_px=32, guard_px=-1)

    def test_simulator_image_layout(self, tiny_simulator):
        layout = (np.random.default_rng(6).random((100, 70)) > 0.8).astype(float)
        result = tiny_simulator.image_layout(layout)
        assert result.shape == (100, 70)
        assert result.tiling.tile_px <= 100


class TestKernelBankCache:
    SOURCE = AnnularSource(sigma_inner=0.5, sigma_outer=0.8)

    def test_decomposition_happens_at_most_once(self):
        cache = KernelBankCache()
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, max_socs_order=8)
        first = cache.get_kernels(config, self.SOURCE, Pupil())
        for _ in range(3):
            again = cache.get_kernels(config, self.SOURCE, Pupil())
            assert again is first
        assert cache.stats.tcc_computes == 1
        assert cache.stats.decompositions == 1
        assert cache.stats.hits == 3

    def test_simulators_share_one_decomposition(self):
        cache = KernelBankCache()
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, max_socs_order=8)
        sims = [LithographySimulator(config=config, cache=cache) for _ in range(3)]
        banks = [sim.kernels for sim in sims]
        assert banks[0] is banks[1] is banks[2]
        assert cache.stats.decompositions == 1

    def test_different_truncations_share_the_tcc(self):
        cache = KernelBankCache()
        base = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, max_socs_order=4)
        from dataclasses import replace

        wide = replace(base, max_socs_order=8)
        low = cache.get_kernels(base, self.SOURCE, Pupil())
        high = cache.get_kernels(wide, self.SOURCE, Pupil())
        assert low.order <= high.order
        assert cache.stats.tcc_computes == 1
        assert cache.stats.decompositions == 2

    def test_fingerprint_separates_different_optics(self):
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
        other = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, defocus_nm=50.0)
        assert optics_fingerprint(config, self.SOURCE, Pupil()) == \
            optics_fingerprint(config, self.SOURCE, Pupil())
        assert optics_fingerprint(config, self.SOURCE, Pupil()) != \
            optics_fingerprint(config, self.SOURCE, Pupil(defocus_nm=50.0))
        assert optics_fingerprint(config, self.SOURCE, Pupil()) != \
            optics_fingerprint(config, CircularSource(sigma=0.5), Pupil())
        assert optics_fingerprint(config, self.SOURCE, Pupil()) != \
            optics_fingerprint(other, self.SOURCE, Pupil())

    def test_pixelated_source_fingerprinted_by_value(self):
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
        pixels_a = np.ones((9, 9))
        pixels_b = np.ones((9, 9))
        pixels_b[0, 0] = 0.5
        assert optics_fingerprint(config, PixelatedSource(pixels_a), Pupil()) == \
            optics_fingerprint(config, PixelatedSource(pixels_a.copy()), Pupil())
        assert optics_fingerprint(config, PixelatedSource(pixels_a), Pupil()) != \
            optics_fingerprint(config, PixelatedSource(pixels_b), Pupil())

    def test_disk_persistence_roundtrip(self, tmp_path):
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, max_socs_order=8)
        writer = KernelBankCache(cache_dir=str(tmp_path))
        bank = writer.get_kernels(config, self.SOURCE, Pupil())
        assert writer.stats.decompositions == 1

        reader = KernelBankCache(cache_dir=str(tmp_path))
        loaded = reader.get_kernels(config, self.SOURCE, Pupil())
        assert reader.stats.decompositions == 0
        assert reader.stats.disk_loads == 1
        np.testing.assert_allclose(loaded.kernels, bank.kernels)
        np.testing.assert_allclose(loaded.eigenvalues, bank.eigenvalues)
        assert loaded.total_energy == pytest.approx(bank.total_energy)
        assert loaded.energy_captured() == pytest.approx(bank.energy_captured())

    def test_clear_resets(self):
        cache = KernelBankCache()
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, max_socs_order=4)
        cache.get_kernels(config, self.SOURCE, Pupil())
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.decompositions == 0


class TestSOCSKernelsField:
    def test_total_energy_is_a_constructor_field(self):
        kernels = SOCSKernels(kernels=np.zeros((1, 3, 3), dtype=complex),
                              eigenvalues=np.array([0.5]),
                              kernel_shape=(3, 3),
                              total_energy=2.0)
        assert kernels.total_energy == 2.0
        assert kernels.energy_captured() == pytest.approx(0.25)

    def test_decompose_populates_total_energy(self, tiny_simulator):
        bank = tiny_simulator.kernels
        assert bank.total_energy >= float(bank.eigenvalues.sum()) - 1e-12
        assert 0.0 < bank.energy_captured() <= 1.0


class TestFourierResizeBatch:
    def test_matches_per_image_resize(self):
        images = np.random.default_rng(7).random((3, 16, 16))
        batched = fourier_resize_batch(images, (24, 24))
        looped = np.stack([fourier_resize(img, (24, 24)) for img in images])
        np.testing.assert_allclose(batched, looped, rtol=1e-12, atol=1e-12)

    def test_identity_and_validation(self):
        images = np.random.default_rng(8).random((2, 8, 8))
        np.testing.assert_allclose(fourier_resize_batch(images, (8, 8)), images)
        with pytest.raises(ValueError):
            fourier_resize_batch(images, (0, 8))


class TestImageLayoutCLI:
    def test_image_layout_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        output = str(tmp_path / "layout.npz")
        code = main(["image-layout", "--width", "96", "--height", "80",
                     "--tile-size", "48", "--pixel-size-nm", "8",
                     "--output", output])
        assert code == 0
        with np.load(output) as data:
            assert data["aerial"].shape == (80, 96)
            assert data["resist"].shape == (80, 96)
            assert data["mask"].shape == (80, 96)
        assert "um^2/s" in capsys.readouterr().out

    def test_image_layout_from_file(self, tmp_path):
        from repro.cli import main

        mask = (np.random.default_rng(9).random((60, 90)) > 0.8).astype(float)
        mask_path = str(tmp_path / "mask.npy")
        np.save(mask_path, mask)
        output = str(tmp_path / "layout.npz")
        code = main(["image-layout", "--input", mask_path, "--tile-size", "32",
                     "--pixel-size-nm", "8", "--guard", "8", "--output", output])
        assert code == 0
        with np.load(output) as data:
            np.testing.assert_array_equal(data["mask"], mask)
            assert data["aerial"].shape == mask.shape

    def test_image_layout_streaming_matches_in_memory(self, tmp_path, capsys):
        """--streaming --out produces the bit-identical stitched result."""
        from repro.cli import main
        from repro.engine import open_layout_dir

        mask = (np.random.default_rng(10).random((60, 90)) > 0.8).astype(float)
        mask_path = str(tmp_path / "mask.npy")
        np.save(mask_path, mask)
        reference = str(tmp_path / "ref.npz")
        assert main(["image-layout", "--input", mask_path, "--tile-size", "32",
                     "--pixel-size-nm", "8", "--guard", "8",
                     "--output", reference]) == 0
        out_dir = str(tmp_path / "streamed")
        assert main(["image-layout", "--input", mask_path, "--tile-size", "32",
                     "--pixel-size-nm", "8", "--guard", "8", "--streaming",
                     "--out", out_dir]) == 0
        assert "streamed" in capsys.readouterr().out
        aerial, resist, meta = open_layout_dir(out_dir)
        with np.load(reference) as data:
            np.testing.assert_array_equal(np.asarray(aerial), data["aerial"])
            np.testing.assert_array_equal(np.asarray(resist), data["resist"])
        assert meta["shape"] == [60, 90]

    def test_image_layout_requires_some_output(self, capsys):
        from repro.cli import main

        assert main(["image-layout", "--width", "64", "--height", "64",
                     "--tile-size", "32", "--pixel-size-nm", "8"]) == 2
        assert "--output" in capsys.readouterr().err
