"""Tests for the FNO spectral convolution layer (repro.nn.spectral)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.spectral import spectral_conv2d
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(17)


class TestSpectralConvFunction:
    def test_output_shape_and_dtype(self):
        x = Tensor(RNG.normal(size=(2, 3, 16, 16)))
        weight = Tensor(RNG.normal(size=(3, 4, 8, 8)) + 1j * RNG.normal(size=(3, 4, 8, 8)))
        out = spectral_conv2d(x, weight, modes=4)
        assert out.shape == (2, 4, 16, 16)
        assert out.dtype == np.float64

    def test_modes_too_large_raises(self):
        x = Tensor(RNG.normal(size=(1, 1, 8, 8)))
        weight = Tensor(np.zeros((1, 1, 12, 12), dtype=complex))
        with pytest.raises(ValueError):
            spectral_conv2d(x, weight, modes=6)

    def test_zero_weight_gives_zero_output(self):
        x = Tensor(RNG.normal(size=(1, 2, 8, 8)))
        weight = Tensor(np.zeros((2, 1, 4, 4), dtype=complex))
        out = spectral_conv2d(x, weight, modes=2)
        np.testing.assert_allclose(out.data, 0.0)

    def test_identity_weight_low_passes(self):
        """A unit weight acts as an ideal low-pass filter: constants pass through."""
        x = Tensor(np.full((1, 1, 8, 8), 2.5))
        weight = Tensor(np.ones((1, 1, 4, 4), dtype=complex))
        out = spectral_conv2d(x, weight, modes=2)
        np.testing.assert_allclose(out.data, 2.5, atol=1e-10)

    def test_gradient_flows_to_weight(self):
        x = Tensor(RNG.normal(size=(1, 1, 8, 8)))
        weight = Tensor(0.1 * (RNG.normal(size=(1, 1, 4, 4)) + 1j * RNG.normal(size=(1, 1, 4, 4))),
                        requires_grad=True)
        loss = F.sum(F.square(spectral_conv2d(x, weight, modes=2)))
        loss.backward()
        assert weight.grad is not None
        assert np.any(np.abs(weight.grad) > 0)


class TestSpectralConvModule:
    def test_parameter_count(self):
        layer = nn.SpectralConv2d(2, 3, modes=4)
        # complex weight (2, 3, 8, 8) counts twice
        assert layer.num_parameters() == 2 * 3 * 8 * 8 * 2

    def test_module_forward_shape(self):
        layer = nn.SpectralConv2d(1, 2, modes=3)
        out = layer(Tensor(RNG.normal(size=(2, 1, 12, 12))))
        assert out.shape == (2, 2, 12, 12)

    def test_module_learns_low_pass_target(self):
        """The spectral layer can fit a smooth (low-frequency) target image."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 1, 16, 16))
        # Target: heavily smoothed version of the input (keep only lowest modes).
        spectrum = np.fft.fftshift(np.fft.fft2(x, norm="ortho"), axes=(-2, -1))
        keep = np.zeros_like(spectrum)
        keep[..., 6:10, 6:10] = spectrum[..., 6:10, 6:10]
        target = np.real(np.fft.ifft2(np.fft.ifftshift(keep, axes=(-2, -1)), norm="ortho"))

        layer = nn.SpectralConv2d(1, 1, modes=2, rng=rng)
        optimizer = nn.Adam(layer.parameters(), lr=2e-2)
        losses = []
        for _ in range(150):
            loss = F.mse_loss(layer(Tensor(x)), Tensor(target))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(float(loss.item()))
        assert losses[-1] < 0.2 * losses[0]
