"""Tests for the disk-backed campaign store (repro.sweep.store) + resumability.

Pinned guarantees:

* every completed condition persists immediately and atomically — the
  manifest never references a half-written record,
* a campaign interrupted after ``k`` of ``F x D`` conditions re-runs
  computing **exactly** the remaining ``F x D - k`` (and nothing on a third
  run), with the resumed window identical to an uninterrupted campaign,
* the auto-tracked CD row and the auto-measured target CD are pinned in the
  manifest, so resumed runs measure the same feature,
* a store refuses a *different* campaign (layout / grid / optics /
  tolerance changes) and refuses silent reuse without ``resume=True``.
"""

import json
import os

import numpy as np
import pytest

from repro.engine import ShardedExecutor
from repro.sweep import (
    CampaignIdentityError,
    CampaignStore,
    FocusExposureGrid,
    ProcessWindowSweep,
    condition_id,
    layout_digest,
)
from repro.optics import OpticsConfig
from repro.optics.source import CircularSource

TILE = 48
CONFIG = OpticsConfig(tile_size_px=TILE, pixel_size_nm=20.0, max_socs_order=12)
SOURCE = CircularSource(sigma=0.6)
GRID = FocusExposureGrid((-100.0, 0.0, 100.0), (0.9, 1.0, 1.1))


@pytest.fixture(scope="module")
def line_mask():
    mask = np.zeros((TILE, TILE))
    mask[4:-4, TILE // 2 - 4: TILE // 2 + 4] = 1.0
    return mask


@pytest.fixture(scope="module")
def baseline(line_mask):
    sweep = ProcessWindowSweep(CONFIG, source=SOURCE)
    return sweep.run(line_mask, grid=GRID, tolerance=0.25)


class TestCampaignStoreUnit:
    IDENTITY = {"layout_sha256": "abc", "layout_shape": [4, 4],
                "optics_fingerprint": "fp", "focus_values_nm": [0.0],
                "dose_values": [1.0], "tolerance": 0.1}

    def test_begin_fresh_and_record(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s"))
        assert store.begin(self.IDENTITY) == {}
        store.record(0.0, 1.0, cd_nm=42.0, threshold=0.225)
        assert len(store) == 1
        entry = store.completed()[condition_id(0.0, 1.0)]
        assert entry["cd_nm"] == 42.0
        record = store.load_record(0.0, 1.0)
        assert record["cd_nm"] == 42.0 and record["threshold"] == 0.225
        # A second store over the same dir resumes the completed map.
        reopened = CampaignStore(str(tmp_path / "s"))
        assert set(reopened.begin(self.IDENTITY)) == {condition_id(0.0, 1.0)}

    def test_record_is_durable_via_append_only_log(self, tmp_path):
        """record() appends to completed.log (O(1)); the next begin()
        consolidates the log into an atomic manifest rewrite."""
        store = CampaignStore(str(tmp_path / "s"))
        store.begin(self.IDENTITY)
        store.record(0.0, 1.0, 1.0, 0.2)
        assert os.path.exists(store.completion_log_path)
        with open(store.manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["version"] == 1
        assert manifest["campaign"] == self.IDENTITY
        assert manifest["completed"] == {}  # not rewritten per condition

        reopened = CampaignStore(str(tmp_path / "s"))
        completed = reopened.begin(self.IDENTITY)
        filename = completed[condition_id(0.0, 1.0)]["file"]
        assert os.path.exists(os.path.join(store.root, filename))
        # Consolidated: the manifest file now owns the entry, the log is gone.
        assert not os.path.exists(store.completion_log_path)
        with open(store.manifest_path, encoding="utf-8") as handle:
            assert condition_id(0.0, 1.0) in json.load(handle)["completed"]

    def test_torn_log_tail_is_ignored(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s"))
        store.begin(self.IDENTITY)
        store.record(0.0, 1.0, 1.0, 0.2)
        with open(store.completion_log_path, "a", encoding="utf-8") as handle:
            handle.write('{"id": "torn_condi')  # killed mid-append
        reopened = CampaignStore(str(tmp_path / "s"))
        assert set(reopened.begin(self.IDENTITY)) == {condition_id(0.0, 1.0)}

    def test_identity_mismatch_raises(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s"))
        store.begin(self.IDENTITY)
        other = dict(self.IDENTITY, tolerance=0.2)
        with pytest.raises(CampaignIdentityError):
            CampaignStore(str(tmp_path / "s")).begin(other)

    def test_resume_false_refuses_existing_manifest(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s"))
        store.begin(self.IDENTITY)
        with pytest.raises(CampaignIdentityError):
            CampaignStore(str(tmp_path / "s")).begin(self.IDENTITY,
                                                     resume=False)

    def test_derived_values_persist(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s"))
        store.begin(self.IDENTITY)
        assert store.get_derived("cd_row") is None
        store.set_derived("cd_row", 17)
        reopened = CampaignStore(str(tmp_path / "s"))
        reopened.begin(self.IDENTITY)
        assert reopened.get_derived("cd_row") == 17

    def test_requires_begin(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s"))
        with pytest.raises(RuntimeError):
            store.record(0.0, 1.0, 1.0, 0.2)

    def test_condition_id_is_exact_and_filename_safe(self):
        assert condition_id(0.0, 1.0) == condition_id(0.0, 1.0)
        assert condition_id(0.1, 1.0) != condition_id(
            0.1 + 1e-12, 1.0)  # repr-exact, no rounding collisions
        for token in (condition_id(-80.0, 0.9), condition_id(1e-3, 1.25)):
            assert "/" not in token and " " not in token

    def test_layout_digest_depends_on_content_and_shape(self):
        a = np.zeros((4, 4))
        b = np.zeros((2, 8))
        assert layout_digest(a) != layout_digest(b)
        c = a.copy()
        c[0, 0] = 1.0
        assert layout_digest(a) != layout_digest(c)
        assert layout_digest(a) == layout_digest(np.zeros((4, 4)))

    def test_save_and_load_aerial(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s"), store_aerials=True)
        store.begin(self.IDENTITY)
        aerial = np.arange(12.0).reshape(3, 4)
        assert store.save_aerial(-40.0, aerial) is not None
        np.testing.assert_array_equal(np.asarray(store.load_aerial(-40.0)),
                                      aerial)
        disabled = CampaignStore(str(tmp_path / "t"))
        disabled.begin(self.IDENTITY)
        assert disabled.save_aerial(0.0, aerial) is None


class TestSweepResumability:
    class Killed(Exception):
        pass

    def _killer(self, after: int):
        calls = []

        def progress(focus, dose, cd):
            calls.append((focus, dose, cd))
            if len(calls) >= after:
                raise self.Killed()

        return progress, calls

    def test_killed_sweep_resumes_exactly_the_remainder(
            self, line_mask, baseline, tmp_path):
        k = 4
        store_dir = str(tmp_path / "campaign")
        sweep = ProcessWindowSweep(CONFIG, source=SOURCE)
        progress, calls = self._killer(k)
        with pytest.raises(self.Killed):
            sweep.run(line_mask, grid=GRID, tolerance=0.25, store=store_dir,
                      progress=progress)
        assert len(calls) == k

        resumed = sweep.run(line_mask, grid=GRID, tolerance=0.25,
                            store=store_dir)
        assert resumed.computed_conditions == len(GRID) - k
        assert resumed.skipped_conditions == k
        assert resumed.window == baseline.window
        assert resumed.store_dir == store_dir

        # A third run recomputes nothing at all.
        again = sweep.run(line_mask, grid=GRID, tolerance=0.25,
                          store=store_dir)
        assert again.computed_conditions == 0
        assert again.skipped_conditions == len(GRID)
        assert again.window == baseline.window

    def test_kill_before_any_record_still_resumes(self, line_mask, baseline,
                                                  tmp_path):
        store_dir = str(tmp_path / "campaign")
        sweep = ProcessWindowSweep(CONFIG, source=SOURCE)
        progress, _ = self._killer(1)
        with pytest.raises(self.Killed):
            sweep.run(line_mask, grid=GRID, tolerance=0.25, store=store_dir,
                      progress=progress)
        resumed = sweep.run(line_mask, grid=GRID, tolerance=0.25,
                            store=store_dir)
        # The first condition DID persist before the progress hook raised.
        assert resumed.computed_conditions == len(GRID) - 1
        assert resumed.window == baseline.window

    def test_resumed_run_pins_cd_row_and_target(self, line_mask, tmp_path):
        store_dir = str(tmp_path / "campaign")
        sweep = ProcessWindowSweep(CONFIG, source=SOURCE)
        progress, _ = self._killer(2)
        with pytest.raises(self.Killed):
            sweep.run(line_mask, grid=GRID, tolerance=0.25, store=store_dir,
                      progress=progress)
        store = CampaignStore(store_dir)
        store.begin(CampaignStore.campaign_identity(
            np.asarray(line_mask, dtype=float), GRID.focus_values_nm,
            GRID.dose_values, 0.25,
            sweep.base_spec.fingerprint())[0])
        assert store.get_derived("cd_row") is not None

    def test_different_guard_is_a_different_campaign(self, tmp_path):
        """Guard width changes seam behaviour and hence CDs: a resume under
        different tiling must be refused, never silently mixed."""
        layout = np.zeros((80, 110))
        layout[10:70, 20:28] = 1.0
        grid = FocusExposureGrid((0.0,), (1.0,))
        store_dir = str(tmp_path / "campaign")
        sweep = ProcessWindowSweep(CONFIG, source=SOURCE)
        sweep.run(layout, grid=grid, tolerance=0.3, guard_px=8,
                  store=store_dir)
        with pytest.raises(CampaignIdentityError):
            sweep.run(layout, grid=grid, tolerance=0.3, guard_px=16,
                      store=store_dir)

    def test_different_layout_is_a_different_campaign(self, line_mask,
                                                      tmp_path):
        store_dir = str(tmp_path / "campaign")
        sweep = ProcessWindowSweep(CONFIG, source=SOURCE)
        sweep.run(line_mask, grid=GRID, tolerance=0.25, store=store_dir)
        other = np.roll(line_mask, 3, axis=1)
        with pytest.raises(CampaignIdentityError):
            sweep.run(other, grid=GRID, tolerance=0.25, store=store_dir)

    def test_store_with_streaming_and_sharded_campaign(self, baseline,
                                                       tmp_path):
        """Store + streaming + multi-tile layout + (focus, shard) pool."""
        layout = np.zeros((80, 110))
        layout[10:70, 20:28] = 1.0
        layout[30:38, 40:100] = 1.0
        grid = FocusExposureGrid((0.0, 120.0), (0.9, 1.1))
        serial = ProcessWindowSweep(CONFIG, source=SOURCE)
        reference = serial.run(layout, grid=grid, tolerance=0.3, guard_px=10)

        store_dir = str(tmp_path / "campaign")
        cache_dir = str(tmp_path / "cache")
        with ShardedExecutor(num_workers=2, cache_dir=cache_dir) as executor:
            sweep = ProcessWindowSweep(CONFIG, source=SOURCE,
                                       executor=executor)
            outcome = sweep.run(layout, grid=grid, tolerance=0.3,
                                guard_px=10, store=store_dir, streaming=True)
        assert outcome.window == reference.window
        assert outcome.computed_conditions == len(grid)

        resumed = serial.run(layout, grid=grid, tolerance=0.3, guard_px=10,
                             store=store_dir)
        assert resumed.computed_conditions == 0
        assert resumed.window == reference.window

    def test_store_aerials_roundtrip(self, line_mask, tmp_path):
        store = CampaignStore(str(tmp_path / "campaign"), store_aerials=True)
        sweep = ProcessWindowSweep(CONFIG, source=SOURCE)
        outcome = sweep.run(line_mask, grid=FocusExposureGrid((0.0,), (1.0,)),
                            tolerance=0.25, store=store, keep_aerials=True)
        np.testing.assert_array_equal(np.asarray(store.load_aerial(0.0)),
                                      outcome.aerials[0.0])
