"""Shared fixtures: tiny optical configurations, simulators and datasets.

Everything here is sized so the full unit-test suite runs in a couple of
minutes on CPU; the benchmark harness (``benchmarks/``) uses larger presets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NithoConfig, NithoModel
from repro.masks import ICCAD2013Generator, ISPDMetalGenerator, ISPDViaGenerator
from repro.optics import LithographySimulator, OpticsConfig, CircularSource
from repro.optics.simulator import lithosim_engine

TINY_TILE = 48
TINY_PIXEL_NM = 20.0


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_optics() -> OpticsConfig:
    """Very small optical configuration shared by most optics / core tests."""
    return OpticsConfig(tile_size_px=TINY_TILE, pixel_size_nm=TINY_PIXEL_NM,
                        resist_threshold=0.225, max_socs_order=16)


@pytest.fixture(scope="session")
def tiny_simulator(tiny_optics) -> LithographySimulator:
    return LithographySimulator(config=tiny_optics, source=CircularSource(sigma=0.6))


@pytest.fixture(scope="session")
def tiny_masks() -> np.ndarray:
    generator = ICCAD2013Generator(TINY_TILE, TINY_PIXEL_NM, seed=7)
    return generator.generate(4)


@pytest.fixture(scope="session")
def tiny_metal_masks() -> np.ndarray:
    generator = ISPDMetalGenerator(TINY_TILE, TINY_PIXEL_NM, seed=7)
    return generator.generate(4)


@pytest.fixture(scope="session")
def tiny_via_masks() -> np.ndarray:
    generator = ISPDViaGenerator(TINY_TILE, TINY_PIXEL_NM, seed=7)
    return generator.generate(4)


@pytest.fixture(scope="session")
def tiny_aerials(tiny_simulator, tiny_masks) -> np.ndarray:
    return np.stack([tiny_simulator.aerial(mask) for mask in tiny_masks], axis=0)


@pytest.fixture(scope="session")
def tiny_resists(tiny_simulator, tiny_aerials) -> np.ndarray:
    return np.stack([tiny_simulator.resist_model.develop(a) for a in tiny_aerials], axis=0)


@pytest.fixture(scope="session")
def quick_nitho_config() -> NithoConfig:
    """Nitho configuration small enough for per-test training."""
    return NithoConfig(num_kernels=10, hidden_dim=32, num_hidden_blocks=1,
                       epochs=90, batch_size=2, learning_rate=1e-2,
                       train_supersample=2, encoding_kwargs={"num_features": 32},
                       seed=0)


@pytest.fixture(scope="session")
def trained_tiny_nitho(tiny_optics, quick_nitho_config, tiny_masks, tiny_aerials) -> NithoModel:
    """One Nitho model trained once and reused by read-only tests."""
    model = NithoModel(tiny_optics, quick_nitho_config)
    model.fit(tiny_masks, tiny_aerials)
    return model


@pytest.fixture(scope="session")
def small_engine() -> LithographySimulator:
    """A 32-pixel engine for tests that only need a coarse golden image."""
    return lithosim_engine(tile_size_px=32, pixel_size_nm=32.0)
