"""Tests for modules in repro.nn.layers (Module plumbing, linear layers, activations)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(11)


class TestModulePlumbing:
    def test_parameters_are_collected_recursively(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 4  # two weights + two biases
        assert any(name.endswith("weight") for name in names)

    def test_num_parameters_counts_complex_twice(self):
        real = nn.Linear(3, 4, bias=False)
        cplx = nn.CLinear(3, 4, bias=False)
        assert real.num_parameters() == 12
        assert cplx.num_parameters() == 24

    def test_size_megabytes_positive(self):
        assert nn.Linear(10, 10).size_megabytes() > 0

    def test_zero_grad_clears_all(self):
        model = nn.Linear(3, 2)
        out = F.sum(model(Tensor(RNG.normal(size=(4, 3)))))
        out.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model)
        model.train()
        assert all(m.training for m in model)

    def test_state_dict_roundtrip(self):
        source = nn.Linear(3, 2, rng=np.random.default_rng(0))
        target = nn.Linear(3, 2, rng=np.random.default_rng(99))
        target.load_state_dict(source.state_dict())
        np.testing.assert_allclose(source.weight.data, target.weight.data)

    def test_load_state_dict_missing_key_raises(self):
        model = nn.Linear(3, 2)
        state = model.state_dict()
        state.pop("bias")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_shape_mismatch_raises(self):
        model = nn.Linear(3, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(Tensor([1.0]))


class TestLinearLayers:
    def test_linear_output_shape(self):
        layer = nn.Linear(5, 3)
        assert layer(Tensor(RNG.normal(size=(7, 5)))).shape == (7, 3)

    def test_linear_no_bias(self):
        layer = nn.Linear(5, 3, bias=False)
        assert "bias" not in dict(layer.named_parameters())

    def test_linear_matches_manual_computation(self):
        layer = nn.Linear(3, 2)
        x = RNG.normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_clinear_output_is_complex(self):
        layer = nn.CLinear(4, 3)
        out = layer(Tensor(RNG.normal(size=(2, 4)) + 1j * RNG.normal(size=(2, 4))))
        assert out.dtype == np.complex128
        assert out.shape == (2, 3)

    def test_clinear_weights_are_complex(self):
        layer = nn.CLinear(4, 3)
        assert layer.weight.is_complex
        assert layer.bias.is_complex

    def test_clinear_trains_to_fit_linear_map(self):
        """A single CLinear layer can recover a fixed complex linear map."""
        rng = np.random.default_rng(0)
        true_weight = rng.normal(size=(3, 2)) + 1j * rng.normal(size=(3, 2))
        inputs = rng.normal(size=(32, 3)) + 1j * rng.normal(size=(32, 3))
        targets = inputs @ true_weight

        layer = nn.CLinear(3, 2, rng=rng)
        optimizer = nn.Adam(layer.parameters(), lr=5e-2)
        for _ in range(300):
            prediction = layer(Tensor(inputs))
            loss = F.sum(F.abs2(F.sub(prediction, Tensor(targets))))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_weight, atol=5e-2)


class TestActivationsAndContainers:
    def test_sequential_applies_in_order(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=np.random.default_rng(0)), nn.ReLU())
        out = model(Tensor(RNG.normal(size=(3, 2))))
        assert np.all(out.data >= 0)

    def test_sequential_len_and_iter(self):
        model = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert len(model) == 2
        assert len(list(model)) == 2

    def test_crelu_module(self):
        out = nn.CReLU()(Tensor([-1 - 1j, 1 + 1j]))
        np.testing.assert_allclose(out.data, [0, 1 + 1j])

    def test_modrelu_module(self):
        out = nn.ModReLU(bias=-10.0)(Tensor([1 + 1j]))
        np.testing.assert_allclose(out.data, [0.0])

    def test_dropout_eval_is_identity(self):
        layer = nn.Dropout(0.9)
        layer.eval()
        x = RNG.normal(size=(5, 5))
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_dropout_train_zeroes_some_entries(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((20, 20))))
        assert np.sum(out.data == 0) > 0

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_layernorm_normalises_last_axis(self):
        layer = nn.LayerNorm(8)
        out = layer(Tensor(RNG.normal(loc=3.0, scale=2.0, size=(5, 8)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_batchnorm_train_normalises(self):
        layer = nn.BatchNorm2d(3)
        x = RNG.normal(loc=5.0, scale=3.0, size=(4, 3, 6, 6))
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)

    def test_batchnorm_eval_uses_running_stats(self):
        layer = nn.BatchNorm2d(2)
        x = RNG.normal(loc=5.0, scale=3.0, size=(4, 2, 4, 4))
        for _ in range(20):
            layer(Tensor(x))
        layer.eval()
        out = layer(Tensor(x)).data
        assert abs(out.mean()) < 1.0
