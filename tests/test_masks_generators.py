"""Tests for the synthetic benchmark mask generators (repro.masks.generators)."""

import numpy as np
import pytest

from repro.masks.generators import (
    DesignRules,
    ICCAD2013Generator,
    ISPDMetalGenerator,
    ISPDViaGenerator,
    make_generator,
)
from repro.masks.geometry import mask_density

TILE = 64
PIXEL = 16.0


class TestGeneratorBase:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ICCAD2013Generator(tile_size_px=0)
        with pytest.raises(ValueError):
            ICCAD2013Generator(pixel_size_nm=-1.0)

    def test_generate_count_validation(self):
        with pytest.raises(ValueError):
            ICCAD2013Generator(TILE, PIXEL).generate(0)

    def test_generate_shape_and_binarity(self):
        masks = ICCAD2013Generator(TILE, PIXEL, seed=0).generate(3)
        assert masks.shape == (3, TILE, TILE)
        assert set(np.unique(masks)).issubset({0.0, 1.0})

    def test_seeded_reproducibility(self):
        a = ICCAD2013Generator(TILE, PIXEL, seed=5).generate(2)
        b = ICCAD2013Generator(TILE, PIXEL, seed=5).generate(2)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ICCAD2013Generator(TILE, PIXEL, seed=1).sample()
        b = ICCAD2013Generator(TILE, PIXEL, seed=2).sample()
        assert not np.array_equal(a, b)


class TestICCAD2013Generator:
    def test_density_in_plausible_range(self):
        masks = ICCAD2013Generator(TILE, PIXEL, seed=3).generate(6)
        densities = [mask_density(m) for m in masks]
        assert all(0.005 < d < 0.5 for d in densities)

    def test_design_rule_validation(self):
        with pytest.raises(ValueError):
            DesignRules(min_width=0.0)

    def test_feature_count_validation(self):
        with pytest.raises(ValueError):
            ICCAD2013Generator(TILE, PIXEL, min_features=5, max_features=3)

    def test_family_label(self):
        assert ICCAD2013Generator(TILE, PIXEL).family == "B1"


class TestISPDMetalGenerator:
    def test_produces_track_like_patterns(self):
        mask = ISPDMetalGenerator(TILE, PIXEL, seed=1).sample()
        # Routed metal should contain long runs: the longest row or column run
        # must span an appreciable fraction of the tile.
        row_run = max(int(row.sum()) for row in mask)
        col_run = max(int(col.sum()) for col in mask.T)
        assert max(row_run, col_run) > TILE // 4

    def test_density_higher_than_contact_layer(self):
        metal = ISPDMetalGenerator(TILE, PIXEL, seed=2).generate(4)
        vias = ISPDViaGenerator(TILE, PIXEL, seed=2).generate(4)
        assert metal.mean() > vias.mean()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ISPDMetalGenerator(TILE, PIXEL, track_pitch_nm=40.0, wire_width_nm=48.0)
        with pytest.raises(ValueError):
            ISPDMetalGenerator(TILE, PIXEL, fill_probability=0.0)

    def test_family_label(self):
        assert ISPDMetalGenerator(TILE, PIXEL).family == "B2m"


class TestISPDViaGenerator:
    def test_never_empty(self):
        generator = ISPDViaGenerator(TILE, PIXEL, seed=4, occupancy=0.01)
        for _ in range(5):
            assert generator.sample().sum() > 0

    def test_vias_are_small_isolated_features(self):
        mask = ISPDViaGenerator(TILE, PIXEL, seed=0, occupancy=0.3).sample()
        # via cuts are small: the density stays low
        assert mask_density(mask) < 0.25

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ISPDViaGenerator(TILE, PIXEL, grid_pitch_nm=50.0, via_size_nm=56.0)
        with pytest.raises(ValueError):
            ISPDViaGenerator(TILE, PIXEL, occupancy=1.5)

    def test_family_label(self):
        assert ISPDViaGenerator(TILE, PIXEL).family == "B2v"


class TestDistributionShift:
    def test_families_have_distinct_spectra(self):
        """The three families must be statistically distinguishable (the premise of Fig. 2a)."""
        def mean_spectrum(masks):
            spectra = [np.abs(np.fft.fftshift(np.fft.fft2(m, norm="ortho"))) for m in masks]
            return np.mean(spectra, axis=0)

        b1 = mean_spectrum(ICCAD2013Generator(TILE, PIXEL, seed=0).generate(6))
        b2m = mean_spectrum(ISPDMetalGenerator(TILE, PIXEL, seed=0).generate(6))
        b2v = mean_spectrum(ISPDViaGenerator(TILE, PIXEL, seed=0).generate(6))

        def distance(a, b):
            return np.linalg.norm(a - b) / np.linalg.norm(a + b)

        assert distance(b1, b2m) > 0.05
        assert distance(b1, b2v) > 0.05
        assert distance(b2m, b2v) > 0.05


class TestFactory:
    def test_known_families(self):
        assert isinstance(make_generator("B1", TILE, PIXEL), ICCAD2013Generator)
        assert isinstance(make_generator("b2m", TILE, PIXEL), ISPDMetalGenerator)
        assert isinstance(make_generator("B2V", TILE, PIXEL), ISPDViaGenerator)

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            make_generator("B3", TILE, PIXEL)
