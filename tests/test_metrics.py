"""Tests for the evaluation metrics (repro.metrics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import nn
from repro.metrics import (
    aerial_metrics,
    iou,
    max_error,
    mean_iou,
    mean_pixel_accuracy,
    model_size_mb,
    mse,
    parameter_count,
    psnr,
    resist_metrics,
    size_comparison,
)

RNG = np.random.default_rng(8)


class TestImageMetrics:
    def test_mse_zero_for_identical(self):
        image = RNG.random((8, 8))
        assert mse(image, image) == 0.0

    def test_mse_matches_definition(self):
        target = np.zeros((4, 4))
        prediction = np.full((4, 4), 0.5)
        assert mse(target, prediction) == pytest.approx(0.25)

    def test_max_error(self):
        target = np.zeros((4, 4))
        prediction = np.zeros((4, 4))
        prediction[1, 2] = -0.7
        assert max_error(target, prediction) == pytest.approx(0.7)

    def test_psnr_uses_target_peak(self):
        target = np.full((4, 4), 0.5)
        prediction = target + 0.05
        expected = 10 * np.log10(0.5 ** 2 / 0.05 ** 2)
        assert psnr(target, prediction) == pytest.approx(expected)

    def test_psnr_perfect_prediction_is_infinite(self):
        image = RNG.random((4, 4))
        assert psnr(image, image) == float("inf")

    def test_psnr_zero_target_raises(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.ones((4, 4)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_aerial_metrics_batched_average(self):
        target = np.stack([np.full((4, 4), 0.5), np.full((4, 4), 0.5)])
        prediction = target.copy()
        prediction[0] += 0.1
        result = aerial_metrics(target, prediction)
        assert result["mse"] == pytest.approx(0.005)
        assert result["me"] == pytest.approx(0.05)

    @given(arrays(np.float64, (6, 6), elements=st.floats(0.01, 1.0)),
           arrays(np.float64, (6, 6), elements=st.floats(0.0, 1.0)))
    @settings(max_examples=30, deadline=None)
    def test_psnr_decreases_as_error_grows(self, target, prediction):
        close = 0.5 * target + 0.5 * prediction
        assert psnr(target, close) >= psnr(target, prediction) - 1e-9

    @given(arrays(np.float64, (5, 5), elements=st.floats(-1, 1)),
           arrays(np.float64, (5, 5), elements=st.floats(-1, 1)))
    @settings(max_examples=30, deadline=None)
    def test_me_bounds_mse(self, a, b):
        assert mse(a, b) <= max_error(a, b) ** 2 + 1e-12


class TestSegmentationMetrics:
    def test_iou_identical(self):
        pattern = RNG.random((8, 8)) > 0.5
        assert iou(pattern, pattern) == 1.0

    def test_iou_disjoint(self):
        a = np.zeros((4, 4)); a[:2] = 1
        b = np.zeros((4, 4)); b[2:] = 1
        assert iou(a, b) == 0.0

    def test_iou_empty_union_is_one(self):
        assert iou(np.zeros((4, 4)), np.zeros((4, 4))) == 1.0

    def test_mean_iou_perfect_is_100(self):
        pattern = RNG.random((8, 8)) > 0.5
        assert mean_iou(pattern, pattern) == pytest.approx(100.0)

    def test_mean_iou_counts_both_classes(self):
        """Predicting everything as printed is penalised through the background class."""
        target = np.zeros((10, 10)); target[:5] = 1
        prediction = np.ones((10, 10))
        assert mean_iou(target, prediction) == pytest.approx(25.0)

    def test_mean_pixel_accuracy_constant_prediction(self):
        target = np.zeros((10, 10)); target[:5] = 1
        prediction = np.ones((10, 10))
        assert mean_pixel_accuracy(target, prediction) == pytest.approx(50.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_iou(np.zeros((4, 4)), np.zeros((3, 3)))

    def test_resist_metrics_batch(self):
        target = (RNG.random((3, 8, 8)) > 0.5).astype(float)
        result = resist_metrics(target, target)
        assert result["mpa"] == pytest.approx(100.0)
        assert result["miou"] == pytest.approx(100.0)

    @given(arrays(np.int8, (8, 8), elements=st.integers(0, 1)),
           arrays(np.int8, (8, 8), elements=st.integers(0, 1)))
    @settings(max_examples=40, deadline=None)
    def test_bounds_and_symmetry(self, a, b):
        value = mean_iou(a, b)
        assert 0.0 <= value <= 100.0
        assert value == pytest.approx(mean_iou(b, a))
        accuracy = mean_pixel_accuracy(a, b)
        assert 0.0 <= accuracy <= 100.0

    @given(arrays(np.int8, (8, 8), elements=st.integers(0, 1)))
    @settings(max_examples=25, deadline=None)
    def test_identity_gives_perfect_scores(self, pattern):
        assert mean_iou(pattern, pattern) == pytest.approx(100.0)
        assert mean_pixel_accuracy(pattern, pattern) == pytest.approx(100.0)


class TestModelSize:
    def test_parameter_count_module(self):
        assert parameter_count(nn.Linear(4, 3)) == 4 * 3 + 3

    def test_parameter_count_complex_module(self):
        assert parameter_count(nn.CLinear(4, 3, bias=False)) == 24

    def test_parameter_count_duck_typed(self):
        class Dummy:
            def num_parameters(self):
                return 7

        assert parameter_count(Dummy()) == 7

    def test_parameter_count_rejects_unknown(self):
        with pytest.raises(TypeError):
            parameter_count(object())

    def test_model_size_mb(self):
        model = nn.Linear(256, 1024, bias=False)
        assert model_size_mb(model) == pytest.approx(256 * 1024 * 4 / 2 ** 20)
        with pytest.raises(ValueError):
            model_size_mb(model, bytes_per_scalar=0)

    def test_size_comparison_ratios(self):
        rows = size_comparison({"big": nn.Linear(100, 100), "small": nn.Linear(10, 10)})
        assert rows["small"]["ratio_to_smallest"] == pytest.approx(1.0)
        assert rows["big"]["ratio_to_smallest"] > 50
