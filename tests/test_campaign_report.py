"""Campaign reporting (repro.sweep.report + repro.cli campaign-report).

The defining property — rendering a stored campaign performs **zero
recomputation** — is pinned two ways: engine construction is poisoned while
the report renders, and the kernel cache's ``CacheStats`` counters must not
move.
"""

import os

import numpy as np
import pytest

import repro.engine.execution
from repro.cli import main
from repro.engine.cache import KernelBankCache
from repro.optics.simulator import OpticsConfig
from repro.sweep import (
    CampaignStore,
    FocusExposureGrid,
    ProcessWindowSweep,
    load_campaign_report,
    render_campaign_report,
    save_aerial_thumbnails,
)

GRID = FocusExposureGrid(focus_values_nm=(-40.0, 0.0, 40.0),
                         dose_values=(0.95, 1.0, 1.05))


def make_mask() -> np.ndarray:
    mask = np.zeros((32, 32))
    mask[8:24, 4:28] = 1.0
    return mask


@pytest.fixture(scope="module")
def completed_store(tmp_path_factory) -> str:
    """One real campaign, persisted with aerial memmaps."""
    store_dir = str(tmp_path_factory.mktemp("campaign") / "store")
    config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
    store = CampaignStore(store_dir, store_aerials=True)
    ProcessWindowSweep(config).run(make_mask(), grid=GRID, store=store)
    return store_dir


class TestCampaignReport:
    def test_loads_identity_grid_and_completion(self, completed_store):
        report = load_campaign_report(completed_store)
        assert report.grid.focus_values_nm == GRID.focus_values_nm
        assert report.grid.dose_values == GRID.dose_values
        assert report.is_complete
        assert report.completed_conditions == len(GRID)
        assert report.campaign["layout_shape"] == [32, 32]
        window = report.window()
        assert window is not None and len(window.points) == len(GRID)

    def test_render_contains_table_summary_and_aerials(self, completed_store):
        report = load_campaign_report(completed_store)
        text = render_campaign_report(report, thumbnail_width=24)
        assert "9/9 conditions complete" in text
        assert "focus_nm \\ dose" in text
        assert "target CD" in text
        assert "window fraction" in text
        assert "stored aerials" in text and "3 per-focus memmap(s)" in text

    def test_zero_recomputation(self, completed_store, monkeypatch):
        """No engine is built, no bank decomposed, no tile imaged."""
        calls = []

        def poisoned(self, *args, **kwargs):
            calls.append("engine")
            raise AssertionError("campaign-report must not build an engine")

        monkeypatch.setattr(repro.engine.execution.ExecutionEngine,
                            "__init__", poisoned)
        cache = KernelBankCache()
        report = load_campaign_report(completed_store)
        render_campaign_report(report, thumbnail_width=16)
        assert calls == []
        assert cache.stats.tcc_computes == 0
        assert cache.stats.decompositions == 0

    def test_partial_campaign_renders_progress(self, tmp_path):
        """A store a killed (or live) sweep left behind still reports."""
        identity, _ = CampaignStore.campaign_identity(
            make_mask(), GRID.focus_values_nm, GRID.dose_values, 0.1,
            "fingerprint")
        store = CampaignStore(str(tmp_path / "partial"))
        store.begin(identity, resume=True)
        store.set_derived("target_cd_nm", 100.0)
        store.record(0.0, 1.0, 100.0, 0.225)
        store.record(0.0, 0.95, 120.0, 0.237)
        report = load_campaign_report(str(tmp_path / "partial"))
        assert not report.is_complete
        assert report.completed_conditions == 2
        matrix = report.cd_matrix()
        assert matrix[0.0][1.0] == 100.0
        assert matrix[-40.0][1.0] is None
        text = render_campaign_report(report)
        assert "2/9 conditions complete (campaign in progress)" in text
        assert "-" in text and "not yet computed" in text
        assert "120.0*" in text  # out of the 10% band around 100 nm

    def test_window_is_none_without_target(self, tmp_path):
        identity, _ = CampaignStore.campaign_identity(
            make_mask(), GRID.focus_values_nm, GRID.dose_values, 0.1,
            "fingerprint")
        store = CampaignStore(str(tmp_path / "no-target"))
        store.begin(identity, resume=True)
        store.record(-40.0, 1.0, 90.0, 0.225)  # nominal condition missing
        report = load_campaign_report(str(tmp_path / "no-target"))
        assert report.window() is None
        text = render_campaign_report(report)  # renders without a summary
        assert "target CD" not in text

    def test_thumbnails_written_as_pgm(self, completed_store, tmp_path):
        report = load_campaign_report(completed_store)
        paths = save_aerial_thumbnails(report, str(tmp_path / "thumbs"))
        assert len(paths) == len(GRID.focus_values_nm)
        for path in paths.values():
            with open(path, "rb") as handle:
                assert handle.read(2) == b"P5"

    def test_thumbnails_are_downsampled(self, completed_store, tmp_path):
        """Huge memmapped aerials must not be materialised at full size."""
        report = load_campaign_report(completed_store)
        paths = save_aerial_thumbnails(report, str(tmp_path / "small"),
                                       max_width_px=16)
        for path in paths.values():
            with open(path, "rb") as handle:
                header = handle.readline() + handle.readline()
            width = int(header.split()[1])
            assert width <= 16  # 32 px aerial strided down, never full-res


class TestCampaignReportCLI:
    def test_cli_renders_stored_campaign(self, completed_store, capsys):
        assert main(["campaign-report", "--store", completed_store,
                     "--thumbnail-width", "20"]) == 0
        out = capsys.readouterr().out
        assert "9/9 conditions complete" in out
        assert "focus_nm \\ dose" in out

    def test_cli_zero_engine_calls(self, completed_store, capsys,
                                   monkeypatch):
        def poisoned(self, *args, **kwargs):
            raise AssertionError("campaign-report must not build an engine")

        monkeypatch.setattr(repro.engine.execution.ExecutionEngine,
                            "__init__", poisoned)
        assert main(["campaign-report", "--store", completed_store]) == 0

    def test_cli_thumbnail_directory(self, completed_store, tmp_path,
                                     capsys):
        thumbs = str(tmp_path / "thumbs")
        assert main(["campaign-report", "--store", completed_store,
                     "--thumbnails", thumbs]) == 0
        assert "PGM thumbnail(s) written" in capsys.readouterr().out
        assert len(os.listdir(thumbs)) == len(GRID.focus_values_nm)

    def test_cli_missing_store_exits_2(self, tmp_path, capsys):
        assert main(["campaign-report", "--store",
                     str(tmp_path / "nowhere")]) == 2
        assert "error" in capsys.readouterr().err


class TestReportFormats:
    """--format json|html: the same zero-recompute data, machine-readable."""

    def test_report_as_dict_structure(self, completed_store):
        from repro.sweep import report_as_dict

        data = report_as_dict(load_campaign_report(completed_store))
        assert data["grid"]["focus_values_nm"] == list(GRID.focus_values_nm)
        assert data["grid"]["dose_values"] == list(GRID.dose_values)
        assert data["progress"] == {"completed": 9, "total": 9,
                                    "complete": True}
        assert len(data["cd_matrix"]) == len(GRID.focus_values_nm)
        assert all(len(row) == len(GRID.dose_values)
                   for row in data["cd_matrix"])
        assert data["window"] is not None
        assert data["window"]["target_cd_nm"] > 0
        assert len(data["aerials"]) == len(GRID.focus_values_nm)

    def test_json_round_trips_and_marks_pending_null(self, tmp_path):
        import json as json_module

        from repro.sweep import render_campaign_report_json

        identity, _ = CampaignStore.campaign_identity(
            make_mask(), GRID.focus_values_nm, GRID.dose_values, 0.1,
            "fingerprint")
        store = CampaignStore(str(tmp_path / "partial"))
        store.begin(identity, resume=True)
        store.record(0.0, 1.0, 100.0, 0.225)
        rendered = render_campaign_report_json(
            load_campaign_report(str(tmp_path / "partial")))
        data = json_module.loads(rendered)
        assert data["progress"]["complete"] is False
        matrix = data["cd_matrix"]
        assert matrix[1][1] == 100.0  # focus 0.0, dose 1.0
        assert matrix[0][0] is None   # pending cells are null

    def test_html_is_self_contained(self, completed_store):
        from repro.sweep import render_campaign_report_html

        html = render_campaign_report_html(
            load_campaign_report(completed_store))
        assert html.startswith("<!DOCTYPE html>")
        assert "<table" in html and "</html>" in html
        assert "thumbnails/" in html  # aerial links the service serves
        assert "src=" not in html     # no external resources

    def test_cli_format_json(self, completed_store, capsys):
        import json as json_module

        assert main(["campaign-report", "--store", completed_store,
                     "--format", "json"]) == 0
        data = json_module.loads(capsys.readouterr().out)
        assert data["progress"]["complete"] is True

    def test_cli_format_html(self, completed_store, capsys):
        assert main(["campaign-report", "--store", completed_store,
                     "--format", "html"]) == 0
        assert capsys.readouterr().out.startswith("<!DOCTYPE html>")

    def test_formats_also_zero_recompute(self, completed_store, monkeypatch):
        def poisoned(self, *args, **kwargs):
            raise AssertionError("campaign-report must not build an engine")

        monkeypatch.setattr(repro.engine.execution.ExecutionEngine,
                            "__init__", poisoned)
        assert main(["campaign-report", "--store", completed_store,
                     "--format", "json"]) == 0
        assert main(["campaign-report", "--store", completed_store,
                     "--format", "html"]) == 0
