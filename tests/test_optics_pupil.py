"""Tests for the pupil model (repro.optics.pupil)."""

import numpy as np
import pytest

from repro.optics.grid import make_grid
from repro.optics.pupil import Pupil

GRID = make_grid(41, 41, field_size_nm=3000.0, wavelength_nm=193.0, numerical_aperture=1.35)


class TestIdealPupil:
    def test_ideal_is_binary_disk(self):
        transfer = Pupil().transfer(GRID)
        values = np.unique(np.abs(transfer))
        assert set(np.round(values, 12)).issubset({0.0, 1.0})

    def test_cutoff_at_unit_radius(self):
        transfer = np.abs(Pupil().transfer(GRID))
        assert transfer[GRID.radius <= 0.99].min() == 1.0
        assert transfer[GRID.radius > 1.01].max() == 0.0

    def test_is_ideal_flag(self):
        assert Pupil().is_ideal()
        assert not Pupil(defocus_nm=50.0).is_ideal()
        assert not Pupil(zernike_coefficients={4: 0.1}).is_ideal()


class TestDefocusAndAberrations:
    def test_defocus_adds_phase_only(self):
        ideal = Pupil().transfer(GRID)
        defocused = Pupil(defocus_nm=80.0).transfer(GRID)
        np.testing.assert_allclose(np.abs(defocused), np.abs(ideal), atol=1e-12)
        inside = GRID.radius <= 0.9
        assert np.any(np.abs(np.angle(defocused[inside])) > 1e-3)

    def test_zero_defocus_has_zero_phase(self):
        transfer = Pupil(defocus_nm=0.0).transfer(GRID)
        inside = GRID.radius <= 1.0
        np.testing.assert_allclose(np.angle(transfer[inside]), 0.0, atol=1e-12)

    def test_defocus_phase_grows_with_radius(self):
        transfer = Pupil(defocus_nm=100.0).transfer(GRID)
        centre_phase = abs(np.angle(transfer[20, 20]))
        edge_phase = abs(np.angle(transfer[20, 28]))
        assert edge_phase > centre_phase

    def test_zernike_defocus_term(self):
        transfer = Pupil(zernike_coefficients={4: 0.05}).transfer(GRID)
        inside = GRID.radius <= 0.9
        assert np.any(np.abs(np.angle(transfer[inside])) > 1e-3)

    def test_unknown_zernike_index_raises(self):
        with pytest.raises(ValueError):
            Pupil(zernike_coefficients={99: 0.1}).transfer(GRID)

    def test_all_supported_zernike_indices(self):
        pupil = Pupil(zernike_coefficients={index: 0.01 for index in range(1, 12)})
        transfer = pupil.transfer(GRID)
        assert np.all(np.isfinite(transfer))

    def test_apodization_reduces_edge_amplitude(self):
        plain = np.abs(Pupil().transfer(GRID))
        apodized = np.abs(Pupil(apodization=2.0).transfer(GRID))
        edge = (GRID.radius > 0.8) & (GRID.radius <= 1.0)
        assert apodized[edge].max() < plain[edge].max()
        assert apodized[20, 20] == pytest.approx(1.0)
