"""Tests for the ArrayModule device seam (repro.backend.array_module).

Pinned guarantees:

* **residency is provable**: on the ``fakegpu`` module the batched core pays
  exactly one upload per mask chunk and one download per aerial chunk — for
  the dense, streaming and sharded-serial paths alike — and the kernel bank
  is uploaded once per (fingerprint, device), never per chunk or per batch,
* **streamed downloads stage through one reusable host buffer** (the pinned
  -buffer hook): ``host_buffer_allocations == 1`` for a whole streamed
  layout,
* **fakegpu == numpy bit for bit** across precisions, real/complex FFT paths
  and band limiting (hypothesis-pinned), so the residency bookkeeping can
  never drift the numerics,
* **host-math mixing raises**: numpy ufuncs on a :class:`FakeDeviceArray`
  and device<->host binary ops fail loudly instead of silently detouring
  through the host,
* **host modules are pass-throughs**: wrapping a plain backend changes
  nothing (same results, zero counted transfers), and the wrapper is cached
  per backend instance,
* ``--precision auto`` resolves deterministically everywhere an engine is
  built (constructor, ``for_optics``, ``EngineSpec``) and never leaks the
  string ``"auto"`` into a worker-bound spec.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.backend import (
    FLOAT32,
    FLOAT64,
    DeviceMixingError,
    HostArrayModule,
    NumpyFFTBackend,
    as_array_module,
    autotune_precision,
    get_backend,
    is_auto_precision,
    resolve_precision,
)
from repro.engine import EngineSpec, ExecutionEngine, ShardedExecutor
from repro.engine.batched import batched_aerial_from_kernels
from repro.engine.execution import (
    DEVICE_BANK_LIMIT,
    _DEVICE_BANKS,
    device_kernel_bank,
)
from repro.optics import OpticsConfig
from repro.optics.aerial import mask_spectrum

CONFIG = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, max_socs_order=8)

RNG = np.random.default_rng(7)
KERNELS = (RNG.standard_normal((3, 9, 9))
           + 1j * RNG.standard_normal((3, 9, 9)))


@pytest.fixture()
def fakegpu():
    """The process-cached fakegpu module with counters and bank memo reset."""
    module = get_backend("fakegpu")
    module.transfer_stats.reset()
    _DEVICE_BANKS.clear()
    yield module
    module.transfer_stats.reset()
    _DEVICE_BANKS.clear()


def make_engines(**kwargs):
    numpy_engine = ExecutionEngine(KERNELS, tile_size_px=32,
                                   fft_backend="numpy", tile_cache=False,
                                   **kwargs)
    fake_engine = ExecutionEngine(KERNELS, tile_size_px=32,
                                  fft_backend=get_backend("fakegpu"),
                                  tile_cache=False, **kwargs)
    return numpy_engine, fake_engine


binary_masks = arrays(np.float64, (4, 32, 32),
                      elements=st.sampled_from([0.0, 1.0]))


# --------------------------------------------------------------------------- #
# transfer counting: residency is provable
# --------------------------------------------------------------------------- #
class TestTransferCounts:
    def test_dense_batch_one_upload_one_download_per_chunk(self, fakegpu):
        _, engine = make_engines()
        masks = RNG.random((6, 32, 32))
        # A chunk budget of one tile: every tile is its own chunk.
        tiny = ExecutionEngine(KERNELS, tile_size_px=32, fft_backend=fakegpu,
                               max_chunk_bytes=1, tile_cache=False)
        tiny.aerial_batch(masks)
        stats = fakegpu.transfer_stats
        assert stats.uploads == 6 + 1  # one per chunk + the bank, once
        assert stats.downloads == 6
        # Full-batch chunk: the whole stack is one upload + one download.
        fakegpu.transfer_stats.reset()
        engine.aerial_batch(masks)
        assert stats.uploads == 1  # bank already device-resident
        assert stats.downloads == 1

    def test_kernel_bank_uploaded_once_per_fingerprint(self, fakegpu):
        _, engine = make_engines()
        masks = RNG.random((2, 32, 32))
        for _ in range(3):
            engine.aerial_batch(masks)
        # 3 chunk uploads + exactly 1 bank upload across all batches.
        assert fakegpu.transfer_stats.uploads == 3 + 1
        # A second engine sharing the bank shares the device copy too.
        other = ExecutionEngine(KERNELS, tile_size_px=32, fft_backend=fakegpu,
                                tile_cache=False)
        other.aerial_batch(masks)
        assert fakegpu.transfer_stats.uploads == 4 + 1

    def test_streaming_layout_counts_and_staging_buffer(self, fakegpu):
        numpy_engine, fake_engine = make_engines()
        layout = RNG.random((70, 70))
        reference = numpy_engine.image_layout(layout, tile_px=32, guard_px=8,
                                              streaming=True)
        result = fake_engine.image_layout(layout, tile_px=32, guard_px=8,
                                          streaming=True)
        np.testing.assert_array_equal(reference.aerial, result.aerial)
        np.testing.assert_array_equal(reference.resist, result.resist)
        stats = fakegpu.transfer_stats
        # The default stream batch is the engine's own chunk size, so each
        # streamed batch is one chunk: one upload + one download each, plus
        # the bank upload, staged through ONE reusable host buffer.
        assert stats.uploads == stats.downloads + 1
        assert stats.host_buffer_allocations == 1

    def test_streaming_download_bytes_match_aerial_payload(self, fakegpu):
        _, fake_engine = make_engines()
        masks = RNG.random((3, 32, 32))
        fake_engine.aerial_batch(masks)
        assert fakegpu.transfer_stats.download_bytes == \
            masks.size * np.dtype(np.float64).itemsize

    def test_sharded_serial_path_stays_resident(self, fakegpu, tmp_path):
        spec = EngineSpec(config=CONFIG, fft_backend="fakegpu",
                          cache_dir=str(tmp_path))
        executor = ShardedExecutor(num_workers=0, cache_dir=str(tmp_path))
        masks = RNG.random((4, 32, 32))
        reference = ShardedExecutor(num_workers=0).aerial_batch(
            EngineSpec(config=CONFIG, fft_backend="numpy"), masks)
        fakegpu.transfer_stats.reset()
        _DEVICE_BANKS.clear()
        result = executor.aerial_batch(spec, masks)
        np.testing.assert_array_equal(reference, result)
        stats = fakegpu.transfer_stats
        assert stats.uploads == 1 + 1  # one chunk + the bank
        assert stats.downloads == 1

    def test_device_bank_memo_is_lru_bounded(self, fakegpu):
        for index in range(DEVICE_BANK_LIMIT + 3):
            device_kernel_bank(fakegpu, f"bank-{index}", KERNELS)
        assert len(_DEVICE_BANKS) == DEVICE_BANK_LIMIT
        # Re-requesting an evicted bank re-uploads (one more transfer).
        before = fakegpu.transfer_stats.uploads
        device_kernel_bank(fakegpu, "bank-0", KERNELS)
        assert fakegpu.transfer_stats.uploads == before + 1

    def test_legacy_host_calls_count_round_trips(self, fakegpu):
        # Host arrays through a device module's transforms keep today's
        # host-in/host-out semantics but the round-trip is counted.
        host = RNG.random((4, 4))
        result = fakegpu.fft2(host, norm="ortho")
        assert isinstance(result, np.ndarray)
        assert fakegpu.transfer_stats.uploads == 1
        assert fakegpu.transfer_stats.downloads == 1


# --------------------------------------------------------------------------- #
# numerics: fakegpu == numpy, bit for bit
# --------------------------------------------------------------------------- #
class TestFakeGpuEqualsNumpy:
    @settings(max_examples=10, deadline=None)
    @given(masks=binary_masks,
           precision=st.sampled_from(["float64", "float32"]),
           band_limited=st.booleans())
    def test_batched_aerial_bit_for_bit(self, masks, precision, band_limited):
        policy = resolve_precision(precision)
        masks = policy.as_real(masks)
        kernels = KERNELS.astype(policy.complex_dtype)
        reference = batched_aerial_from_kernels(
            masks, kernels, band_limited=band_limited,
            backend=get_backend("numpy"), precision=policy)
        result = batched_aerial_from_kernels(
            masks, kernels, band_limited=band_limited,
            backend=get_backend("fakegpu"), precision=policy)
        assert result.dtype == reference.dtype
        np.testing.assert_array_equal(reference, result)

    @settings(max_examples=10, deadline=None)
    @given(masks=binary_masks, real_fft=st.booleans())
    def test_mask_spectrum_bit_for_bit(self, masks, real_fft):
        module = get_backend("fakegpu")
        reference = mask_spectrum(masks, (9, 9), backend=get_backend("numpy"),
                                  real_fft=real_fft)
        device = mask_spectrum(module.asarray(masks), (9, 9), backend=module,
                               real_fft=real_fft)
        np.testing.assert_array_equal(reference, module.to_host(device))

    def test_out_buffer_result_identical(self, fakegpu):
        _, engine = make_engines()
        masks = RNG.random((3, 32, 32))
        reference = engine.aerial_batch(masks)
        out = np.empty_like(reference)
        returned = engine.aerial_batch(masks, out=out)
        assert returned is out
        np.testing.assert_array_equal(reference, out)


# --------------------------------------------------------------------------- #
# host-math mixing fails loudly
# --------------------------------------------------------------------------- #
class TestDeviceMixing:
    def test_numpy_ufunc_on_device_array_raises(self, fakegpu):
        device = fakegpu.asarray(np.ones((2, 2)))
        with pytest.raises(TypeError):
            np.abs(device)

    def test_binary_op_with_host_ndarray_raises(self, fakegpu):
        device = fakegpu.asarray(np.ones((2, 2)))
        with pytest.raises(DeviceMixingError):
            device * np.ones((2, 2))

    def test_implicit_array_conversion_raises(self, fakegpu):
        device = fakegpu.asarray(np.ones((2, 2)))
        with pytest.raises(DeviceMixingError, match="to_host"):
            np.asarray(device)

    def test_scalars_are_metadata_and_interoperate(self, fakegpu):
        device = fakegpu.asarray(np.full((2, 2), 3.0))
        doubled = fakegpu.to_host(2.0 * device)
        np.testing.assert_array_equal(doubled, np.full((2, 2), 6.0))

    def test_device_mixing_error_is_a_type_error(self):
        assert issubclass(DeviceMixingError, TypeError)


# --------------------------------------------------------------------------- #
# host modules are cached pass-throughs
# --------------------------------------------------------------------------- #
class TestAsArrayModule:
    def test_plain_backend_wrapped_once(self):
        backend = NumpyFFTBackend()
        module = as_array_module(backend)
        assert isinstance(module, HostArrayModule)
        assert module.name == "numpy"
        assert not module.is_resident
        assert as_array_module(backend) is module

    def test_host_ops_are_numpy_verbatim(self):
        module = as_array_module(NumpyFFTBackend())
        fields = RNG.standard_normal((2, 3, 4, 4)) \
            + 1j * RNG.standard_normal((2, 3, 4, 4))
        np.testing.assert_array_equal(module.abs2_sum(fields, axis=1),
                                      np.sum(np.abs(fields) ** 2, axis=1))
        np.testing.assert_array_equal(module.fftshift(fields),
                                      np.fft.fftshift(fields, axes=(-2, -1)))
        assert module.transfer_stats.uploads == 0
        assert module.transfer_stats.downloads == 0

    def test_like_narrows_device_module_to_host_view(self, fakegpu):
        host_mask = np.ones((4, 4))
        module = as_array_module(fakegpu, like=host_mask)
        assert not module.is_resident
        assert module.host_view() is module
        # ... but a device operand keeps the device namespace.
        device_mask = fakegpu.asarray(host_mask)
        assert as_array_module(fakegpu, like=device_mask) is fakegpu

    def test_module_passes_through_unwrapped(self, fakegpu):
        assert as_array_module(fakegpu) is fakegpu


# --------------------------------------------------------------------------- #
# --precision auto
# --------------------------------------------------------------------------- #
class TestAutoPrecision:
    def test_autotune_picks_float32_when_truncation_dominates(self):
        # Least-energetic kernel carries ~1e-2 of the energy: truncation
        # error far above float32's documented 1e-4 tolerance.
        kernels = np.stack([np.full((4, 4), 1.0 + 0j),
                            np.full((4, 4), 0.1 + 0j)])
        assert autotune_precision(kernels) is FLOAT32

    def test_autotune_keeps_float64_for_tight_banks(self):
        # Both kernels matter equally down to ~1e-6 of the energy: dtype
        # error would dominate, stay in float64.
        kernels = np.stack([np.full((4, 4), 1.0 + 0j),
                            np.full((4, 4), 1e-3 + 0j)])
        assert autotune_precision(kernels) is FLOAT64

    def test_is_auto_precision_spellings(self, monkeypatch):
        assert is_auto_precision("auto")
        assert not is_auto_precision("float32")
        assert not is_auto_precision(FLOAT64)
        monkeypatch.setenv("REPRO_PRECISION", "auto")
        assert is_auto_precision(None)

    def test_resolve_precision_rejects_auto_with_pointer(self):
        with pytest.raises(ValueError, match="kernel bank"):
            resolve_precision("auto")

    def test_engine_constructor_resolves_auto(self):
        engine = ExecutionEngine(KERNELS, tile_size_px=32, precision="auto",
                                 tile_cache=False)
        assert engine.precision in (FLOAT32, FLOAT64)
        assert engine.kernels.dtype == engine.precision.complex_dtype

    def test_for_optics_resolves_auto(self):
        engine = ExecutionEngine.for_optics(CONFIG, precision="auto")
        assert engine.precision in (FLOAT32, FLOAT64)

    def test_engine_spec_ships_concrete_name_to_workers(self, tmp_path):
        spec = EngineSpec(config=CONFIG, precision="auto",
                          cache_dir=str(tmp_path))
        assert spec.precision in ("float32", "float64")
        assert "auto" not in spec.fingerprint()
        # The spec's engine runs at exactly the precision the parent chose.
        engine = spec.build()
        assert engine.precision.name == spec.precision
