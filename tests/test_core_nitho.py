"""Tests for the NithoModel (Algorithm 1) and the kernel-bank engine."""

import numpy as np
import pytest

from repro.core import KernelBankEngine, NithoConfig, NithoModel, NithoTrainer
from repro.metrics import aerial_metrics


class TestNithoConfig:
    def test_defaults_are_valid(self):
        config = NithoConfig()
        assert config.num_kernels > 0
        assert config.encoding == "rff"

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            NithoConfig(num_kernels=0)
        with pytest.raises(ValueError):
            NithoConfig(epochs=0)


class TestNithoModelStructure:
    def test_kernel_shape_from_resolution_limit(self, tiny_optics, quick_nitho_config):
        from repro.core.kernel_dims import kernel_dimensions

        model = NithoModel(tiny_optics, quick_nitho_config)
        expected = kernel_dimensions(tiny_optics.tile_size_px, tiny_optics.tile_size_px,
                                     pixel_size_nm=tiny_optics.pixel_size_nm)
        assert model.kernel_shape == expected

    def test_kernel_shape_override(self, tiny_optics, quick_nitho_config):
        from dataclasses import replace

        config = replace(quick_nitho_config, kernel_shape_override=(9, 9))
        model = NithoModel(tiny_optics, config)
        assert model.kernel_shape == (9, 9)

    def test_train_resolution_bounds(self, tiny_optics, quick_nitho_config):
        model = NithoModel(tiny_optics, quick_nitho_config)
        res = model.train_resolution
        assert max(model.kernel_shape) <= res[0] <= tiny_optics.tile_size_px
        assert res[0] % 2 == 0 or res[0] == tiny_optics.tile_size_px

    def test_full_resolution_training_option(self, tiny_optics, quick_nitho_config):
        from dataclasses import replace

        config = replace(quick_nitho_config, train_supersample=0)
        model = NithoModel(tiny_optics, config)
        assert model.train_resolution == (tiny_optics.tile_size_px, tiny_optics.tile_size_px)

    def test_prepare_spectra_shape(self, tiny_optics, quick_nitho_config, tiny_masks):
        model = NithoModel(tiny_optics, quick_nitho_config)
        spectra = model.prepare_spectra(tiny_masks)
        assert spectra.shape == (len(tiny_masks), *model.kernel_shape)
        assert spectra.dtype == np.complex128

    def test_prepare_targets_resamples(self, tiny_optics, quick_nitho_config, tiny_aerials):
        model = NithoModel(tiny_optics, quick_nitho_config)
        targets = model.prepare_targets(tiny_aerials)
        assert targets.shape == (len(tiny_aerials), *model.train_resolution)

    def test_forward_aerial_shape_and_dtype(self, tiny_optics, quick_nitho_config, tiny_masks):
        model = NithoModel(tiny_optics, quick_nitho_config)
        spectra = model.prepare_spectra(tiny_masks[:2])
        prediction = model.forward_aerial(spectra)
        assert prediction.shape == (2, *model.train_resolution)
        assert prediction.dtype == np.float64
        assert np.all(prediction.data >= -1e-12)

    def test_num_parameters_and_size(self, tiny_optics, quick_nitho_config):
        model = NithoModel(tiny_optics, quick_nitho_config)
        assert model.num_parameters() > 0
        assert model.size_megabytes() == pytest.approx(model.num_parameters() * 4 / 2 ** 20)

    def test_real_valued_variant(self, tiny_optics, quick_nitho_config):
        from dataclasses import replace

        config = replace(quick_nitho_config, real_valued_mlp=True)
        model = NithoModel(tiny_optics, config)
        assert not model._encoded_coordinates.is_complex
        assert model.export_kernels().shape[0] == config.num_kernels


class TestNithoTraining:
    def test_training_reduces_loss(self, trained_tiny_nitho):
        history = trained_tiny_nitho.history
        assert history[-1] < 0.2 * history[0]

    def test_prediction_beats_trivial_baselines(self, trained_tiny_nitho, tiny_simulator,
                                                tiny_masks, tiny_aerials):
        """The learned kernels must beat both the all-zero and the mean-image predictors."""
        prediction = trained_tiny_nitho.predict_aerial(tiny_masks[0])
        target = tiny_aerials[0]
        model_mse = np.mean((prediction - target) ** 2)
        zero_mse = np.mean(target ** 2)
        mean_mse = np.mean((target - target.mean()) ** 2)
        assert model_mse < 0.2 * zero_mse
        assert model_mse < 0.2 * mean_mse

    def test_generalises_to_unseen_masks(self, trained_tiny_nitho, tiny_simulator):
        """Kernel regression generalises: evaluate on masks never seen in training."""
        from repro.masks import ICCAD2013Generator

        generator = ICCAD2013Generator(tiny_simulator.config.tile_size_px,
                                       tiny_simulator.config.pixel_size_nm, seed=999)
        unseen = generator.generate(2)
        golden = np.stack([tiny_simulator.aerial(m) for m in unseen])
        predicted = trained_tiny_nitho.predict_batch(unseen)
        metrics = aerial_metrics(golden, predicted)
        assert metrics["psnr"] > 20.0

    def test_generalises_to_other_mask_family(self, trained_tiny_nitho, tiny_simulator,
                                              tiny_via_masks):
        """The OOD property: training on B1-style masks, predicting via-style masks."""
        golden = np.stack([tiny_simulator.aerial(m) for m in tiny_via_masks[:2]])
        predicted = trained_tiny_nitho.predict_batch(tiny_via_masks[:2])
        assert aerial_metrics(golden, predicted)["psnr"] > 18.0

    def test_fit_validates_inputs(self, tiny_optics, quick_nitho_config, tiny_masks, tiny_aerials):
        model = NithoModel(tiny_optics, quick_nitho_config)
        with pytest.raises(ValueError):
            model.fit(tiny_masks[:2], tiny_aerials[:1])
        with pytest.raises(ValueError):
            model.fit(tiny_masks[:0], tiny_aerials[:0])

    def test_trainer_evaluate(self, trained_tiny_nitho, tiny_masks, tiny_aerials):
        trainer = NithoTrainer(trained_tiny_nitho)
        value = trainer.evaluate(tiny_masks, tiny_aerials)
        assert value >= 0.0
        assert value < 0.01

    def test_resist_prediction_binary(self, trained_tiny_nitho, tiny_masks):
        resist = trained_tiny_nitho.predict_resist(tiny_masks[0])
        assert set(np.unique(resist)).issubset({0, 1})

    def test_state_dict_roundtrip_preserves_predictions(self, trained_tiny_nitho, tiny_optics,
                                                        quick_nitho_config, tiny_masks):
        clone = NithoModel(tiny_optics, quick_nitho_config)
        clone.load_state_dict(trained_tiny_nitho.state_dict())
        np.testing.assert_allclose(clone.predict_aerial(tiny_masks[0]),
                                   trained_tiny_nitho.predict_aerial(tiny_masks[0]))

    def test_export_kernels_cached_and_refreshed(self, tiny_optics, quick_nitho_config,
                                                 tiny_masks, tiny_aerials):
        model = NithoModel(tiny_optics, quick_nitho_config)
        first = model.export_kernels()
        assert model.export_kernels() is first
        model.fit(tiny_masks[:2], tiny_aerials[:2], epochs=1)
        assert model.export_kernels() is not first


class TestKernelBankEngine:
    def test_requires_3d_kernels(self):
        with pytest.raises(ValueError):
            KernelBankEngine(np.zeros((4, 4)))

    def test_aerial_matches_nitho_fast_path(self, trained_tiny_nitho, tiny_masks):
        engine = KernelBankEngine(trained_tiny_nitho.export_kernels())
        np.testing.assert_allclose(engine.aerial(tiny_masks[0]),
                                   trained_tiny_nitho.predict_aerial(tiny_masks[0]))

    def test_golden_kernels_reproduce_simulator(self, tiny_simulator, tiny_masks):
        engine = KernelBankEngine(tiny_simulator.kernels.kernels,
                                  resist_threshold=tiny_simulator.config.resist_threshold)
        np.testing.assert_allclose(engine.aerial(tiny_masks[0]), tiny_simulator.aerial(tiny_masks[0]))
        np.testing.assert_array_equal(engine.resist(tiny_masks[0]), tiny_simulator.resist(tiny_masks[0]))

    def test_tile_size_validation(self, trained_tiny_nitho, tiny_masks):
        engine = KernelBankEngine(trained_tiny_nitho.export_kernels(), tile_size_px=8)
        with pytest.raises(ValueError):
            engine.aerial(tiny_masks[0])

    def test_truncate(self, tiny_simulator):
        engine = KernelBankEngine(tiny_simulator.kernels.kernels)
        truncated = engine.truncate(2)
        assert truncated.order == 2
        with pytest.raises(ValueError):
            engine.truncate(0)

    def test_truncate_rejects_order_beyond_bank(self, tiny_simulator):
        """The seed silently returned the full bank for an over-long truncation."""
        engine = KernelBankEngine(tiny_simulator.kernels.kernels)
        with pytest.raises(ValueError, match="only holds"):
            engine.truncate(engine.order + 1)

    def test_kernel_energy_sorted_descending_for_golden(self, tiny_simulator):
        engine = KernelBankEngine(tiny_simulator.kernels.kernels)
        energy = engine.kernel_energy()
        assert np.all(np.diff(energy) <= 1e-9)

    def test_batch_helpers(self, tiny_simulator, tiny_masks):
        engine = KernelBankEngine(tiny_simulator.kernels.kernels)
        aerials = engine.aerial_batch(tiny_masks[:2])
        resists = engine.resist_batch(tiny_masks[:2])
        assert aerials.shape == (2, *tiny_masks[0].shape)
        assert resists.shape == (2, *tiny_masks[0].shape)
