"""The repro.api façade: three verbs over the imaging stack.

The façade must be a *thin* composition — its results are pinned bit-for-bit
against the underlying layers it wraps.
"""

import numpy as np
import pytest

import repro.api as api
from repro.engine import ExecutionEngine
from repro.optics.simulator import OpticsConfig

OPTICS = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
COMPUTE = api.ComputeConfig(fft_backend="numpy", precision="float64")


def make_mask() -> np.ndarray:
    mask = np.zeros((48, 48))
    mask[10:38, 6:42] = 1.0
    mask[20:28, 20:28] = 0.0
    return mask


class TestFacade:
    def test_explicit_all(self):
        assert set(api.__all__) == {"ComputeConfig", "image_layout",
                                    "open_campaign", "sweep_window"}
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_image_layout_matches_engine(self):
        mask = make_mask()
        image = api.image_layout(mask, OPTICS, compute=COMPUTE, tile_px=32)
        engine = ExecutionEngine.for_optics(OPTICS, compute=COMPUTE)
        direct = engine.image_layout(mask, tile_px=32)
        np.testing.assert_array_equal(np.asarray(image.aerial),
                                      np.asarray(direct.aerial))
        np.testing.assert_array_equal(np.asarray(image.resist),
                                      np.asarray(direct.resist))

    def test_image_layout_accepts_a_path(self, tmp_path):
        mask = make_mask()
        path = tmp_path / "layout.npy"
        np.save(path, mask)
        image = api.image_layout(str(path), OPTICS, compute=COMPUTE)
        reference = api.image_layout(mask, OPTICS, compute=COMPUTE)
        np.testing.assert_array_equal(np.asarray(image.aerial),
                                      np.asarray(reference.aerial))

    def test_sweep_window_and_open_campaign(self, tmp_path):
        store = str(tmp_path / "campaign")
        outcome = api.sweep_window(make_mask(), OPTICS,
                                   focus_nm=[-40.0, 0.0, 40.0],
                                   dose=[0.95, 1.0, 1.05],
                                   compute=COMPUTE, store=store)
        assert outcome.computed_conditions == 9
        report = api.open_campaign(store)
        assert report.is_complete
        assert report.completed_conditions == 9
        window = report.window()
        assert window is not None
        assert window.target_cd_nm == pytest.approx(
            outcome.window.target_cd_nm)

    def test_open_campaign_missing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            api.open_campaign(str(tmp_path / "nothing"))
