"""Tests for aerial-image formation, the Abbe reference path and the resist models.

The key physics check lives here: the SOCS kernel path and the rigorous Abbe
source-point summation must produce the same aerial image.
"""

import numpy as np
import pytest

from repro.optics import (
    ConstantThresholdResist,
    VariableThresholdResist,
    abbe_aerial,
    aerial_batch,
    aerial_from_kernels,
    clear_field_intensity,
    edge_placement_error,
    mask_spectrum,
)
from repro.optics.pupil import Pupil
from repro.optics.socs import decompose_tcc
from repro.optics.source import CircularSource
from repro.optics.tcc import compute_tcc

WAVELENGTH = 193.0
NA = 1.35
TILE = 40
PIXEL = 24.0
FIELD = TILE * PIXEL
# The SOCS/Abbe equivalence only holds when the kernel window covers the full
# intensity band limit 2 NA / lambda, i.e. the Eq. (10) dimension.
from repro.core.kernel_dims import kernel_dimensions  # noqa: E402

KERNEL_SHAPE = kernel_dimensions(TILE, TILE, WAVELENGTH, NA, PIXEL)


@pytest.fixture(scope="module")
def socs_kernels():
    tcc = compute_tcc(CircularSource(sigma=0.6), Pupil(), KERNEL_SHAPE,
                      field_size_nm=FIELD, wavelength_nm=WAVELENGTH, numerical_aperture=NA)
    return decompose_tcc(tcc, max_order=None, energy_tolerance=1e-12)


@pytest.fixture(scope="module")
def sample_mask():
    mask = np.zeros((TILE, TILE))
    mask[10:30, 14:20] = 1.0   # vertical bar
    mask[18:22, 8:32] = 1.0    # horizontal bar crossing it
    return mask


class TestMaskSpectrum:
    def test_full_spectrum_shape(self, sample_mask):
        assert mask_spectrum(sample_mask).shape == (TILE, TILE)

    def test_cropped_spectrum_shape(self, sample_mask):
        assert mask_spectrum(sample_mask, KERNEL_SHAPE).shape == KERNEL_SHAPE

    def test_dc_value_is_mask_mean_scaled(self, sample_mask):
        spectrum = mask_spectrum(sample_mask)
        dc = spectrum[TILE // 2, TILE // 2]
        assert dc.real == pytest.approx(sample_mask.sum() / TILE, rel=1e-9)
        assert dc.imag == pytest.approx(0.0, abs=1e-9)


class TestAerialFromKernels:
    def test_output_is_real_non_negative(self, socs_kernels, sample_mask):
        aerial = aerial_from_kernels(sample_mask, socs_kernels.kernels)
        assert aerial.shape == sample_mask.shape
        assert np.all(aerial >= -1e-12)
        assert not np.iscomplexobj(aerial)

    def test_empty_mask_gives_zero_intensity(self, socs_kernels):
        aerial = aerial_from_kernels(np.zeros((TILE, TILE)), socs_kernels.kernels)
        np.testing.assert_allclose(aerial, 0.0, atol=1e-15)

    def test_clear_field_is_about_one(self, socs_kernels):
        value = clear_field_intensity(socs_kernels.kernels, TILE, TILE)
        assert value == pytest.approx(1.0, abs=0.02)

    def test_intensity_peaks_inside_features(self, socs_kernels, sample_mask):
        aerial = aerial_from_kernels(sample_mask, socs_kernels.kernels)
        inside = aerial[sample_mask > 0.5].mean()
        outside = aerial[sample_mask < 0.5].mean()
        assert inside > 3 * outside

    def test_invalid_inputs_raise(self, socs_kernels):
        with pytest.raises(ValueError):
            aerial_from_kernels(np.zeros((4, 4, 4)), socs_kernels.kernels)
        with pytest.raises(ValueError):
            aerial_from_kernels(np.zeros((8, 8)), socs_kernels.kernels[0])

    def test_batch_helper(self, socs_kernels, sample_mask):
        batch = aerial_batch(np.stack([sample_mask, sample_mask]), socs_kernels.kernels)
        assert batch.shape == (2, TILE, TILE)
        np.testing.assert_allclose(batch[0], batch[1])

    def test_linearity_in_intensity_is_not_assumed(self, socs_kernels, sample_mask):
        """Partially coherent imaging is not linear in the mask: I(2M) != 2 I(M)."""
        aerial_one = aerial_from_kernels(sample_mask, socs_kernels.kernels)
        aerial_two = aerial_from_kernels(2.0 * sample_mask, socs_kernels.kernels)
        assert not np.allclose(aerial_two, 2.0 * aerial_one)
        np.testing.assert_allclose(aerial_two, 4.0 * aerial_one, rtol=1e-6)

    def test_translation_covariance(self, socs_kernels, sample_mask):
        """Shifting the mask shifts the aerial image (cyclically) by the same amount."""
        aerial = aerial_from_kernels(sample_mask, socs_kernels.kernels)
        shifted_mask = np.roll(sample_mask, (5, -3), axis=(0, 1))
        shifted_aerial = aerial_from_kernels(shifted_mask, socs_kernels.kernels)
        np.testing.assert_allclose(shifted_aerial, np.roll(aerial, (5, -3), axis=(0, 1)), atol=1e-9)


class TestSOCSEqualsAbbe:
    def test_socs_matches_rigorous_abbe(self, socs_kernels, sample_mask):
        """The central physics validation: kernel imaging == direct source-point summation."""
        socs = aerial_from_kernels(sample_mask, socs_kernels.kernels)
        abbe = abbe_aerial(sample_mask, CircularSource(sigma=0.6), Pupil(),
                           field_size_nm=FIELD, wavelength_nm=WAVELENGTH,
                           numerical_aperture=NA)
        assert np.max(np.abs(socs - abbe)) / abbe.max() < 5e-3

    def test_truncated_socs_is_close_but_not_exact(self, socs_kernels, sample_mask):
        truncated = socs_kernels.kernels[:4]
        socs = aerial_from_kernels(sample_mask, truncated)
        abbe = abbe_aerial(sample_mask, CircularSource(sigma=0.6), Pupil(),
                           field_size_nm=FIELD, wavelength_nm=WAVELENGTH,
                           numerical_aperture=NA)
        relative = np.max(np.abs(socs - abbe)) / abbe.max()
        assert relative < 0.2
        assert relative > 1e-6

    def test_abbe_rejects_non_2d_masks(self):
        with pytest.raises(ValueError):
            abbe_aerial(np.zeros((2, 4, 4)), CircularSource(0.5), Pupil(), FIELD, WAVELENGTH, NA)


class TestResistModels:
    def test_constant_threshold_binary_output(self, socs_kernels, sample_mask):
        aerial = aerial_from_kernels(sample_mask, socs_kernels.kernels)
        resist = ConstantThresholdResist(0.3).develop(aerial)
        assert set(np.unique(resist)).issubset({0, 1})

    def test_lower_threshold_prints_more(self, socs_kernels, sample_mask):
        aerial = aerial_from_kernels(sample_mask, socs_kernels.kernels)
        low = ConstantThresholdResist(0.1).develop(aerial).sum()
        high = ConstantThresholdResist(0.5).develop(aerial).sum()
        assert low >= high

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ConstantThresholdResist(0.0)

    def test_soft_develop_bounds_and_monotonicity(self, socs_kernels, sample_mask):
        aerial = aerial_from_kernels(sample_mask, socs_kernels.kernels)
        soft = ConstantThresholdResist(0.3).soft_develop(aerial)
        assert np.all((soft >= 0) & (soft <= 1))
        assert soft[aerial > 0.5].min() > soft[aerial < 0.1].max()

    def test_variable_threshold_develops_binary(self, socs_kernels, sample_mask):
        aerial = aerial_from_kernels(sample_mask, socs_kernels.kernels)
        resist = VariableThresholdResist(base_threshold=0.3).develop(aerial)
        assert set(np.unique(resist)).issubset({0, 1})

    def test_variable_threshold_prints_at_least_constant(self, socs_kernels, sample_mask):
        """Slope sensitivity only lowers the local threshold, never raises it."""
        aerial = aerial_from_kernels(sample_mask, socs_kernels.kernels)
        constant = ConstantThresholdResist(0.3).develop(aerial)
        variable = VariableThresholdResist(base_threshold=0.3, slope_sensitivity=0.1).develop(aerial)
        assert variable.sum() >= constant.sum()

    def test_edge_placement_error(self):
        a = np.zeros((4, 4))
        b = np.zeros((4, 4))
        b[0, 0] = 1
        assert edge_placement_error(a, a) == 0.0
        assert edge_placement_error(a, b) == 1.0
        with pytest.raises(ValueError):
            edge_placement_error(a, np.zeros((3, 3)))
