"""Scheduler conformance suite (repro.engine.scheduler).

One shared parametrized file, run cell-by-cell by the CI ``scheduler-matrix``
job across ``{serial, pool, stealing}`` x mp contexts ``{fork, spawn}``.

Pinned guarantees:

* every scheduler's facade output is **bit-for-bit** the serial output, in
  every (scheduler, mp-context) cell,
* true (focus, dose, shard) tasks schedule through all three schedulers —
  ``EngineSpec.dose`` scales only the resist threshold, never the aerial,
* ``StealingPoolScheduler`` equals ``SerialScheduler`` bit-for-bit under
  *randomised* task-completion orders and shard splits (hypothesis),
* abandoning a campaign generator cancels every future that has not started
  (the PR 7 bugfix), and
* ``FaultInjectingScheduler`` chaos — dropped tasks, injected
  ``BrokenProcessPool``, a SIGKILLed live worker — always degrades to the
  serial fallback with identical results.
"""

import multiprocessing
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    EngineSpec,
    FaultInjectingScheduler,
    PoolScheduler,
    Scheduler,
    SerialScheduler,
    ShardedExecutor,
    StealingPoolScheduler,
    TaskSpec,
    faults_from_env,
    resolve_scheduler,
)
from repro.optics import OpticsConfig
from repro.optics.source import CircularSource

CONFIG = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, max_socs_order=8)
SOURCE = CircularSource(sigma=0.6)

SCHEDULER_NAMES = ("serial", "pool", "stealing")
MP_CONTEXTS = ("fork", "spawn")

#: Engines for fake-pool / serial scheduler runs, memoised per fingerprint
#: (kernel banks flow through the process-wide default cache anyway).
_ENGINES = {}


def _engine_provider(spec):
    engine = _ENGINES.get(spec.fingerprint())
    if engine is None:
        engine = spec.build()
        _ENGINES[spec.fingerprint()] = engine
    return engine


@pytest.fixture(scope="module")
def spec():
    return EngineSpec(config=CONFIG, source=SOURCE)


@pytest.fixture(scope="module")
def masks():
    return (np.random.default_rng(11).random((6, 32, 32)) > 0.7).astype(float)


def _require_context(name: str):
    if name not in multiprocessing.get_all_start_methods():
        pytest.skip(f"mp start method {name!r} unavailable on this platform")
    return multiprocessing.get_context(name)


# --------------------------------------------------------------------------- #
# the matrix: sharded == serial bit-for-bit in every cell
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("mp_context", MP_CONTEXTS, ids=lambda c: f"ctx_{c}")
@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES,
                         ids=lambda s: f"sched_{s}")
def test_sharded_equals_serial_bit_for_bit(scheduler, mp_context, spec,
                                           masks, tmp_path):
    context = _require_context(mp_context)
    reference = ShardedExecutor(
        num_workers=1, cache_dir=str(tmp_path)).aerial_batch(spec, masks)
    with ShardedExecutor(num_workers=2, cache_dir=str(tmp_path),
                         mp_context=context, scheduler=scheduler) as sharded:
        result = sharded.aerial_batch(spec, masks)
        assert sharded.last_used_pool == (scheduler != "serial")
    np.testing.assert_array_equal(result, reference)


@pytest.mark.parametrize("mp_context", MP_CONTEXTS, ids=lambda c: f"ctx_{c}")
@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES,
                         ids=lambda s: f"sched_{s}")
def test_focus_dose_shard_campaign_matches_serial(scheduler, mp_context,
                                                  spec, masks, tmp_path):
    """(focus, dose, shard) tasks through every scheduler, any cell."""
    context = _require_context(mp_context)
    conditions = [((focus, dose), spec.with_condition(focus, dose))
                  for focus in (0.0, 60.0) for dose in (0.9, 1.1)]
    serial = ShardedExecutor(num_workers=1, cache_dir=str(tmp_path))
    reference = {key: serial.warm(cond_spec).aerial_batch(masks)
                 for key, cond_spec in conditions}
    with ShardedExecutor(num_workers=2, cache_dir=str(tmp_path),
                         mp_context=context, scheduler=scheduler) as sharded:
        results = dict(sharded.run_conditions(conditions, masks))
    assert set(results) == set(reference)
    for key, expected in reference.items():
        np.testing.assert_array_equal(results[key], expected)


# --------------------------------------------------------------------------- #
# the dose axis
# --------------------------------------------------------------------------- #
class TestEngineSpecDose:
    def test_dose_scales_resist_threshold_only(self, spec, masks):
        dosed = spec.with_condition(0.0, dose=1.25)
        nominal = spec.with_condition(0.0)
        assert dosed.build().resist_model.threshold == pytest.approx(
            CONFIG.resist_threshold / 1.25)
        assert nominal.build().resist_model.threshold == pytest.approx(
            CONFIG.resist_threshold)
        # The aerial is dose-independent: only develop changes.
        np.testing.assert_array_equal(dosed.build().aerial_batch(masks),
                                      nominal.build().aerial_batch(masks))

    def test_dose_changes_fingerprint(self, spec):
        assert spec.with_condition(0.0, 1.1).fingerprint() != \
            spec.with_condition(0.0).fingerprint()
        # Pre-dose fingerprints are unchanged (campaign-store identities!).
        assert "dose" not in spec.fingerprint()
        assert spec.with_condition(30.0).fingerprint() == \
            spec.with_focus(30.0).fingerprint()

    def test_dose_survives_refocus_and_pickling(self, spec):
        import pickle

        dosed = spec.with_condition(40.0, 0.9)
        assert dosed.with_focus(80.0).dose == 0.9
        assert pickle.loads(pickle.dumps(dosed)).fingerprint() == \
            dosed.fingerprint()

    def test_dose_validation(self):
        with pytest.raises(ValueError):
            EngineSpec(config=CONFIG, dose=0.0)


# --------------------------------------------------------------------------- #
# fake pools: deterministic completion control without processes
# --------------------------------------------------------------------------- #
class _ManualPool:
    """Futures resolve only when :meth:`resolve` is called — or never, in
    which case the parent must steal them (cancel succeeds on any future
    that was not resolved)."""

    def __init__(self):
        self.calls = []

    def submit(self, fn, *args, **kwargs):
        from concurrent.futures import Future

        future = Future()
        self.calls.append((future, fn, args, kwargs))
        return future

    def resolve(self, index: int) -> None:
        future, fn, args, kwargs = self.calls[index]
        if future.set_running_or_notify_cancel():
            future.set_result(fn(*args, **kwargs))

    def shutdown(self, *args, **kwargs):
        pass


class _LazyPool:
    """Resolves the first ``eager`` submits in-process, queues the rest
    unresolved forever (they can only be cancelled)."""

    def __init__(self, eager: int):
        self.eager = eager
        self.pending = []
        self.submits = 0

    def submit(self, fn, *args, **kwargs):
        from concurrent.futures import Future

        future = Future()
        self.submits += 1
        if self.submits <= self.eager:
            future.set_result(fn(*args, **kwargs))
        else:
            self.pending.append(future)
        return future

    def shutdown(self, *args, **kwargs):
        pass


# --------------------------------------------------------------------------- #
# scheduler-level conformance (no processes involved)
# --------------------------------------------------------------------------- #
class TestSchedulerInterface:
    def _tasks(self, spec, masks, count=3):
        return [TaskSpec(spec=spec.with_focus(20.0 * index), masks=masks,
                         shard_slice=slice(0, masks.shape[0]),
                         condition=index)
                for index in range(count)]

    def test_serial_scheduler_yields_in_submission_order(self, spec, masks):
        with SerialScheduler(_engine_provider) as scheduler:
            tasks = [scheduler.submit(task)
                     for task in self._tasks(spec, masks)]
            completed = list(scheduler.as_completed())
        assert [task for task, _ in completed] == tasks
        for task, result in completed:
            np.testing.assert_array_equal(
                result, _engine_provider(task.spec).aerial_batch(masks))

    def test_task_spec_carries_fingerprint_condition_shard(self, spec, masks):
        task = TaskSpec(spec=spec, masks=masks, shard_slice=slice(2, 8),
                        condition=(0.0, 1.0))
        assert task.spec_fingerprint == spec.fingerprint()
        assert task.condition == (0.0, 1.0)
        assert (task.shard_slice.start, task.shard_slice.stop) == (2, 8)
        assert task.num_tiles == masks.shape[0]

    def test_serial_cancel_pending_reclaims_queue(self, spec, masks):
        scheduler = SerialScheduler(_engine_provider)
        for task in self._tasks(spec, masks):
            scheduler.submit(task)
        assert scheduler.cancel_pending() == 3
        assert list(scheduler.as_completed()) == []

    def test_pool_scheduler_assembles_any_completion_order(self, spec, masks):
        pool = _ManualPool()
        scheduler = PoolScheduler(lambda: pool, _engine_provider)
        for task in self._tasks(spec, masks):
            scheduler.submit(task)
        for index in (2, 0, 1):  # out of submission order
            pool.resolve(index)
        results = {task.condition: result
                   for task, result in scheduler.as_completed()}
        assert set(results) == {0, 1, 2}
        for task in self._tasks(spec, masks):
            np.testing.assert_array_equal(
                results[task.condition],
                _engine_provider(task.spec).aerial_batch(masks))

    def test_stealing_scheduler_steals_unstarted_work(self, spec, masks):
        pool = _ManualPool()
        scheduler = StealingPoolScheduler(lambda: pool, _engine_provider,
                                          split_factor=3)
        scheduler.poll_interval = 0.001
        task = TaskSpec(spec=spec, masks=masks,
                        shard_slice=slice(0, masks.shape[0]), condition=0)
        scheduler.submit(task)
        assert len(pool.calls) == 3  # split into sub-tasks
        pool.resolve(0)  # workers only ever get to the first sub-task
        completed = dict(scheduler.as_completed())
        assert scheduler.stolen == 2  # the parent computed the rest
        np.testing.assert_array_equal(
            completed[task], _engine_provider(spec).aerial_batch(masks))

    def test_resolve_scheduler_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="stealing"):
            resolve_scheduler("bogus", None, None)
        with pytest.raises(ValueError):
            ShardedExecutor(scheduler="bogus")

    def test_resolve_scheduler_honours_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "stealing")
        scheduler = resolve_scheduler(None, lambda: None, _engine_provider)
        assert isinstance(scheduler, StealingPoolScheduler)
        monkeypatch.delenv("REPRO_SCHEDULER")
        assert isinstance(resolve_scheduler(None, lambda: None, None),
                          PoolScheduler)

    def test_schedulers_are_context_managers(self):
        with SerialScheduler(_engine_provider) as scheduler:
            assert isinstance(scheduler, Scheduler)
            assert not scheduler.uses_pool
        assert PoolScheduler.uses_pool and StealingPoolScheduler.uses_pool


# --------------------------------------------------------------------------- #
# hypothesis: stealing == serial under randomised completion + splits
# --------------------------------------------------------------------------- #
class TestStealingEqualsSerialProperty:
    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_stealing_matches_serial_bit_for_bit(self, data):
        split_factor = data.draw(st.integers(1, 5), label="split_factor")
        batch = data.draw(st.integers(2, 7), label="batch")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        masks = (np.random.default_rng(seed).random((batch, 32, 32))
                 > 0.7).astype(float)
        conditions = data.draw(st.lists(
            st.tuples(st.sampled_from((0.0, 60.0)),
                      st.sampled_from((0.9, 1.0, 1.1))),
            min_size=1, max_size=3, unique=True), label="conditions")
        base = EngineSpec(config=CONFIG, source=SOURCE)
        tasks = [TaskSpec(spec=base.with_condition(focus, dose),
                          masks=masks, shard_slice=slice(0, batch),
                          condition=(focus, dose))
                 for focus, dose in conditions]

        serial = SerialScheduler(_engine_provider)
        for task in tasks:
            serial.submit(task)
        reference = {task.condition: result
                     for task, result in serial.as_completed()}

        pool = _ManualPool()
        stealing = StealingPoolScheduler(lambda: pool, _engine_provider,
                                         split_factor=split_factor)
        stealing.poll_interval = 0.001
        for task in tasks:
            stealing.submit(task)
        # A random prefix of a random permutation completes "in the pool";
        # everything else stays queued until the parent steals it.
        order = data.draw(st.permutations(range(len(pool.calls))),
                          label="completion_order")
        completes = data.draw(st.integers(0, len(order)), label="completes")
        for index in order[:completes]:
            pool.resolve(index)
        results = {task.condition: result
                   for task, result in stealing.as_completed()}

        assert set(results) == set(reference)
        for key, expected in reference.items():
            np.testing.assert_array_equal(results[key], expected)


# --------------------------------------------------------------------------- #
# the bugfix: abandoning a campaign cancels outstanding futures
# --------------------------------------------------------------------------- #
class TestCancelOnAbandon:
    def test_abandoned_campaign_cancels_unstarted_futures(self, spec, masks,
                                                          tmp_path):
        executor = ShardedExecutor(num_workers=2, cache_dir=str(tmp_path))
        shards = len(executor._shard_slices(masks.shape[0]))
        pool = _LazyPool(eager=shards)  # condition 0 completes, rest hangs
        executor._pool = pool
        specs = [spec.with_focus(focus) for focus in (0.0, 60.0, 120.0)]
        campaign = executor.campaign_aerials(specs, masks)
        index, first = next(campaign)
        assert index == 0
        campaign.close()  # the consumer walks away mid-campaign
        assert pool.pending  # futures were outstanding...
        assert all(future.cancelled() for future in pool.pending), \
            "abandoning the generator must cancel unstarted futures"
        executor._pool = None

    def test_abandoned_serial_campaign_computes_nothing_more(self, spec,
                                                             masks):
        calls = []
        executor = ShardedExecutor(num_workers=1)
        original = executor.warm

        def counting_warm(spec):
            calls.append(spec.fingerprint())
            return original(spec)

        executor.warm = counting_warm
        specs = [spec.with_focus(focus) for focus in (0.0, 60.0, 120.0)]
        campaign = executor.campaign_aerials(specs, masks)
        next(campaign)
        campaign.close()
        assert len(set(calls)) == 1  # only the first focus was ever built


# --------------------------------------------------------------------------- #
# fault injection: chaos with a correctness guarantee
# --------------------------------------------------------------------------- #
class TestFaultInjection:
    def _reference(self, specs, masks, tmp_path):
        executor = ShardedExecutor(num_workers=1, cache_dir=str(tmp_path))
        return [executor.warm(spec).aerial_batch(masks) for spec in specs]

    def test_injected_break_degrades_to_serial(self, spec, masks, tmp_path):
        specs = [spec.with_focus(focus) for focus in (0.0, 60.0, 120.0)]
        reference = self._reference(specs, masks, tmp_path)
        executor = ShardedExecutor(num_workers=2, cache_dir=str(tmp_path))
        executor.scheduler = FaultInjectingScheduler(
            PoolScheduler(executor._pool_handle, executor._task_engine),
            break_after=1)
        results = dict(executor.campaign_aerials(specs, masks))
        assert executor._pool is None  # the facade closed the "broken" pool
        assert set(results) == {0, 1, 2}
        for index, expected in enumerate(reference):
            np.testing.assert_array_equal(results[index], expected)

    def test_dropped_tasks_are_recomputed_serially(self, spec, masks,
                                                   tmp_path):
        specs = [spec.with_focus(focus) for focus in (0.0, 60.0, 120.0)]
        reference = self._reference(specs, masks, tmp_path)
        executor = ShardedExecutor(num_workers=2, cache_dir=str(tmp_path))
        dropper = FaultInjectingScheduler(
            PoolScheduler(executor._pool_handle, executor._task_engine),
            drop=(0, 3))
        executor.scheduler = dropper
        with executor:
            results = dict(executor.campaign_aerials(specs, masks))
        assert len(dropper.dropped) == 0  # cancel_pending reclaimed them
        assert set(results) == {0, 1, 2}
        for index, expected in enumerate(reference):
            np.testing.assert_array_equal(results[index], expected)

    def test_killed_worker_mid_campaign_degrades_to_serial(self, spec, masks,
                                                           tmp_path):
        """A real SIGKILL of a live pool worker: the pool breaks naturally,
        the campaign must still finish with bit-identical output."""
        specs = [spec.with_focus(focus) for focus in (0.0, 60.0, 120.0)]
        reference = self._reference(specs, masks, tmp_path)
        executor = ShardedExecutor(num_workers=2, cache_dir=str(tmp_path))
        executor.scheduler = FaultInjectingScheduler(
            PoolScheduler(executor._pool_handle, executor._task_engine),
            kill_after=1)
        with executor:
            results = dict(executor.campaign_aerials(specs, masks))
        assert set(results) == {0, 1, 2}
        for index, expected in enumerate(reference):
            np.testing.assert_array_equal(results[index], expected)

    def test_faults_from_env_parsing(self, monkeypatch):
        assert faults_from_env("") is None
        assert faults_from_env("break_after=2") == {"break_after": 2}
        assert faults_from_env("drop=0:2,kill_after=3") == \
            {"drop": (0, 2), "kill_after": 3}
        with pytest.raises(ValueError, match="unknown fault"):
            faults_from_env("explode=1")
        monkeypatch.setenv("REPRO_SCHEDULER_FAULTS", "break_after=1")
        assert faults_from_env() == {"break_after": 1}

    def test_env_faults_wrap_named_schedulers(self, spec, masks, tmp_path,
                                              monkeypatch):
        """The CI chaos hook: REPRO_SCHEDULER_FAULTS breaks an unmodified
        run mid-campaign; the output must not change."""
        specs = [spec.with_focus(focus) for focus in (0.0, 60.0, 120.0)]
        reference = self._reference(specs, masks, tmp_path)
        monkeypatch.setenv("REPRO_SCHEDULER_FAULTS", "break_after=1")
        with ShardedExecutor(num_workers=2, cache_dir=str(tmp_path),
                             scheduler="pool") as executor:
            scheduler, owned = executor._make_scheduler()
            assert owned and isinstance(scheduler, FaultInjectingScheduler)
            results = dict(executor.campaign_aerials(specs, masks))
        assert set(results) == {0, 1, 2}
        for index, expected in enumerate(reference):
            np.testing.assert_array_equal(results[index], expected)

    def test_fault_env_is_documented_default_off(self):
        assert os.environ.get("REPRO_SCHEDULER_FAULTS") is None
        assert faults_from_env() is None
