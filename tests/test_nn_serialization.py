"""Tests for checkpoint save / load (repro.nn.serialization)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.serialization import load_module, save_module
from repro.nn.tensor import Tensor


def test_save_and_load_roundtrip(tmp_path):
    source = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(0)), nn.ReLU(),
                           nn.Linear(3, 2, rng=np.random.default_rng(1)))
    path = str(tmp_path / "model.npz")
    save_module(source, path)

    target = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(7)), nn.ReLU(),
                           nn.Linear(3, 2, rng=np.random.default_rng(8)))
    load_module(target, path)

    x = Tensor(np.random.default_rng(2).normal(size=(5, 4)))
    np.testing.assert_allclose(source(x).data, target(x).data)


def test_save_creates_missing_directories(tmp_path):
    model = nn.Linear(2, 2)
    path = str(tmp_path / "nested" / "deeper" / "model.npz")
    save_module(model, path)
    load_module(nn.Linear(2, 2), path)


def test_complex_parameters_roundtrip(tmp_path):
    source = nn.CLinear(3, 2, rng=np.random.default_rng(0))
    path = str(tmp_path / "cmlp.npz")
    save_module(source, path)
    target = nn.CLinear(3, 2, rng=np.random.default_rng(9))
    load_module(target, path)
    np.testing.assert_allclose(source.weight.data, target.weight.data)
    assert target.weight.is_complex


def test_load_into_mismatched_model_raises(tmp_path):
    path = str(tmp_path / "model.npz")
    save_module(nn.Linear(2, 2), path)
    with pytest.raises((KeyError, ValueError)):
        load_module(nn.Linear(3, 3), path)
