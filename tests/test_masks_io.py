"""Tests for layout / dataset persistence (repro.masks.io)."""

import json

import numpy as np
import pytest

from repro.masks import Layout, Rect
from repro.masks.datasets import DatasetSpec, build_dataset
from repro.masks.io import load_dataset, load_layout, save_dataset, save_layout


@pytest.fixture()
def sample_layout():
    layout = Layout(extent_nm=1000.0)
    layout.add("M1", Rect(10, 20, 100, 50))
    layout.add("M1", Rect(300, 400, 50, 200))
    layout.add("V1", Rect(120, 40, 30, 30))
    return layout


@pytest.fixture(scope="module")
def sample_dataset():
    spec = DatasetSpec("B1", train_count=2, test_count=2, tile_size_px=32, pixel_size_nm=32.0)
    return build_dataset("B1", seed=0, spec=spec)


class TestLayoutIO:
    def test_roundtrip_preserves_shapes(self, sample_layout, tmp_path):
        path = save_layout(sample_layout, str(tmp_path / "nested" / "layout.json"))
        restored = load_layout(path)
        assert restored.extent_nm == sample_layout.extent_nm
        assert restored.layer_names() == sample_layout.layer_names()
        assert restored.shape_count() == sample_layout.shape_count()
        original = sample_layout.shapes("M1")[0]
        loaded = restored.shapes("M1")[0]
        assert (loaded.x, loaded.y, loaded.width, loaded.height) == (
            original.x, original.y, original.width, original.height)

    def test_roundtrip_preserves_rasterisation(self, sample_layout, tmp_path):
        path = save_layout(sample_layout, str(tmp_path / "layout.json"))
        restored = load_layout(path)
        np.testing.assert_array_equal(restored.rasterize("M1", 32),
                                      sample_layout.rasterize("M1", 32))

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError):
            load_layout(str(path))

    def test_rejects_wrong_version(self, sample_layout, tmp_path):
        path = save_layout(sample_layout, str(tmp_path / "layout.json"))
        document = json.loads(open(path).read())
        document["version"] = 999
        open(path, "w").write(json.dumps(document))
        with pytest.raises(ValueError):
            load_layout(path)


class TestDatasetIO:
    def test_roundtrip_preserves_arrays_and_metadata(self, sample_dataset, tmp_path):
        path = save_dataset(sample_dataset, str(tmp_path / "data" / "b1.npz"))
        restored = load_dataset(path)
        assert restored.name == sample_dataset.name
        assert restored.pixel_size_nm == sample_dataset.pixel_size_nm
        assert restored.litho_engine == sample_dataset.litho_engine
        np.testing.assert_array_equal(restored.train_masks, sample_dataset.train_masks)
        np.testing.assert_allclose(restored.test_aerials, sample_dataset.test_aerials)
        np.testing.assert_array_equal(restored.test_resists, sample_dataset.test_resists)

    def test_rejects_foreign_npz(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, values=np.zeros(3))
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_loaded_dataset_supports_fraction_split(self, sample_dataset, tmp_path):
        path = save_dataset(sample_dataset, str(tmp_path / "b1.npz"))
        restored = load_dataset(path)
        assert restored.train_fraction(0.5).num_train == 1
