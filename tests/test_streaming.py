"""Tests for the out-of-core streaming layout path (repro.engine.streaming).

Pinned guarantees:

* the streaming stitch is **bit-for-bit** the in-memory ``image_layout``
  result — across guard bands, batch sizes, FFT backends (numpy / scipy)
  and precisions (float64 / float32), including a hypothesis sweep over
  random layout geometries,
* ``iter_tile_batches`` covers every placement exactly once and never
  materialises more than one batch,
* the ``out_dir`` memmap layout round-trips through ``open_layout_dir``
  (self-describing ``.npy`` files + ``meta.json``), and
* memmapped *inputs* work: a layout opened with ``mmap_mode="r"`` streams
  through without being loaded wholesale.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    EngineSpec,
    TilingSpec,
    extract_tile_batch,
    extract_tiles,
    iter_tile_batches,
    open_layout_dir,
    plan_tiles,
    stitch_into,
)
from repro.optics import OpticsConfig
from repro.optics.source import CircularSource

CONFIG = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, max_socs_order=8)
SOURCE = CircularSource(sigma=0.6)


@pytest.fixture(scope="module")
def engine():
    return EngineSpec(config=CONFIG, source=SOURCE).build()


@pytest.fixture(scope="module")
def layout():
    rng = np.random.default_rng(11)
    return (rng.random((90, 122)) > 0.72).astype(float)


class TestTileBatching:
    def test_batches_cover_all_placements_once(self, layout):
        spec = TilingSpec(tile_px=32, guard_px=8)
        placements = plan_tiles(*layout.shape, spec)
        seen = []
        for tiles, subset in iter_tile_batches(layout, placements, spec, 3):
            assert len(tiles) == len(subset) <= 3
            seen.extend(subset)
        assert seen == placements

    def test_batches_match_full_extraction(self, layout):
        spec = TilingSpec(tile_px=32, guard_px=8)
        full, placements = extract_tiles(layout, spec)
        streamed = np.concatenate(
            [tiles for tiles, _ in iter_tile_batches(layout, placements,
                                                     spec, 4)], axis=0)
        np.testing.assert_array_equal(streamed, full)

    def test_extract_tile_batch_is_a_slice_of_extract_tiles(self, layout):
        spec = TilingSpec(tile_px=32, guard_px=6)
        full, placements = extract_tiles(layout, spec)
        subset = placements[2:5]
        np.testing.assert_array_equal(
            extract_tile_batch(layout, subset, spec), full[2:5])

    def test_batch_tiles_validation(self, layout):
        spec = TilingSpec(tile_px=32, guard_px=0)
        with pytest.raises(ValueError):
            list(iter_tile_batches(layout, plan_tiles(*layout.shape, spec),
                                   spec, 0))

    def test_stitch_into_is_split_inverse(self, layout):
        """Incremental stitch of the raw tiles reproduces the layout exactly."""
        spec = TilingSpec(tile_px=32, guard_px=8)
        placements = plan_tiles(*layout.shape, spec)
        out = np.zeros_like(layout)
        for tiles, subset in iter_tile_batches(layout, placements, spec, 5):
            stitch_into(out, tiles, subset, spec)
        np.testing.assert_array_equal(out, layout)


class TestStreamingEqualsInMemory:
    @pytest.mark.parametrize("backend_name,precision", [
        ("numpy", "float64"),
        ("numpy", "float32"),
        ("scipy", "float64"),
        ("scipy", "float32"),
    ])
    @pytest.mark.parametrize("guard_px", [0, 8])
    def test_bit_for_bit_across_policies(self, layout, backend_name,
                                         precision, guard_px):
        if backend_name == "scipy":
            pytest.importorskip("scipy.fft")
        engine = EngineSpec(config=CONFIG, source=SOURCE,
                            fft_backend=backend_name,
                            precision=precision).build()
        reference = engine.image_layout(layout, guard_px=guard_px)
        streamed = engine.image_layout(layout, guard_px=guard_px,
                                       streaming=True, batch_tiles=3)
        np.testing.assert_array_equal(streamed.aerial, reference.aerial)
        np.testing.assert_array_equal(streamed.resist, reference.resist)
        assert streamed.num_tiles == reference.num_tiles
        assert streamed.aerial.dtype == reference.aerial.dtype

    @pytest.mark.parametrize("batch_tiles", [1, 2, 7, None])
    def test_bit_for_bit_across_batch_sizes(self, engine, layout, batch_tiles):
        reference = engine.image_layout(layout, guard_px=8)
        streamed = engine.image_layout(layout, guard_px=8, streaming=True,
                                       batch_tiles=batch_tiles)
        np.testing.assert_array_equal(streamed.aerial, reference.aerial)

    @settings(max_examples=10, deadline=None)
    @given(height=st.integers(20, 70), width=st.integers(20, 70),
           guard=st.integers(0, 12), batch=st.integers(1, 5),
           seed=st.integers(0, 2 ** 16))
    def test_bit_for_bit_random_geometry(self, engine, height, width, guard,
                                         batch, seed):
        rng = np.random.default_rng(seed)
        layout = (rng.random((height, width)) > 0.7).astype(float)
        reference = engine.image_layout(layout, guard_px=guard)
        streamed = engine.image_layout(layout, guard_px=guard,
                                       streaming=True, batch_tiles=batch)
        np.testing.assert_array_equal(streamed.aerial, reference.aerial)
        np.testing.assert_array_equal(streamed.resist, reference.resist)

    def test_default_batch_matches_engine_chunk(self, engine):
        tiling = TilingSpec(tile_px=32, guard_px=8)
        assert engine.stream_batch_tiles(tiling) >= 1
        small_chunk = EngineSpec(config=CONFIG, source=SOURCE,
                                 max_chunk_bytes=32 * 32 * 16).build()
        assert small_chunk.stream_batch_tiles(tiling) == 1


class TestMemmapOutput:
    def test_out_dir_roundtrip(self, engine, layout, tmp_path):
        out_dir = str(tmp_path / "streamed")
        reference = engine.image_layout(layout, guard_px=8)
        result = engine.image_layout(layout, guard_px=8, out_dir=out_dir)
        assert isinstance(result.aerial, np.memmap)
        assert result.out_dir == out_dir
        np.testing.assert_array_equal(np.asarray(result.aerial),
                                      reference.aerial)

        aerial, resist, meta = open_layout_dir(out_dir)
        np.testing.assert_array_equal(np.asarray(aerial), reference.aerial)
        np.testing.assert_array_equal(np.asarray(resist), reference.resist)
        assert meta["shape"] == list(layout.shape)
        assert meta["tile_px"] == 32 and meta["guard_px"] == 8
        assert meta["num_tiles"] == reference.num_tiles
        assert meta["aerial_dtype"] == "float64"
        assert meta["backend"] == engine.backend.name
        assert meta["precision"] == engine.precision.name

    def test_open_layout_dir_requires_meta(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_layout_dir(str(tmp_path))

    def test_memmap_layout_input_streams(self, engine, layout, tmp_path):
        """An np.load(..., mmap_mode='r') layout goes straight through."""
        path = str(tmp_path / "layout.npy")
        np.save(path, layout)
        mapped = np.load(path, mmap_mode="r")
        reference = engine.image_layout(layout, guard_px=8)
        streamed = engine.image_layout(mapped, guard_px=8, streaming=True)
        np.testing.assert_array_equal(streamed.aerial, reference.aerial)

    def test_out_dir_files_exist(self, engine, layout, tmp_path):
        out_dir = str(tmp_path / "d")
        engine.image_layout(layout, guard_px=8, out_dir=out_dir)
        assert sorted(os.listdir(out_dir)) == ["aerial.npy", "meta.json",
                                               "resist.npy"]
