"""Tests for dataset assembly (repro.masks.datasets)."""

import numpy as np
import pytest

from repro.masks.datasets import (
    PRESETS,
    DatasetSpec,
    LithoDataset,
    build_benchmark_suite,
    build_dataset,
    merge_datasets,
)

SPEC = DatasetSpec("B1", train_count=3, test_count=2, tile_size_px=32, pixel_size_nm=32.0)
SPEC_B2M = DatasetSpec("B2m", train_count=2, test_count=2, tile_size_px=32, pixel_size_nm=32.0)
SPEC_B2V = DatasetSpec("B2v", train_count=3, test_count=2, tile_size_px=32, pixel_size_nm=32.0)


@pytest.fixture(scope="module")
def b1_dataset():
    return build_dataset("B1", seed=0, spec=SPEC)


class TestPresets:
    def test_all_presets_have_all_families(self):
        for preset, specs in PRESETS.items():
            assert set(specs) == {"B1", "B2m", "B2v"}, preset

    def test_relative_sizes_follow_table2(self):
        """B2v has the most training tiles, B2m the fewest — as in the paper's Table II."""
        for specs in PRESETS.values():
            assert specs["B2v"].train_count >= specs["B1"].train_count >= specs["B2m"].train_count

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            build_dataset("B1", preset="huge")

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError):
            build_dataset("B9", preset="tiny")


class TestBuildDataset:
    def test_shapes_and_counts(self, b1_dataset):
        assert b1_dataset.num_train == 3
        assert b1_dataset.num_test == 2
        assert b1_dataset.train_masks.shape == (3, 32, 32)
        assert b1_dataset.train_aerials.shape == (3, 32, 32)
        assert b1_dataset.train_resists.shape == (3, 32, 32)
        assert b1_dataset.tile_size_px == 32

    def test_masks_binary_and_aerials_physical(self, b1_dataset):
        assert set(np.unique(b1_dataset.train_masks)).issubset({0.0, 1.0})
        assert b1_dataset.train_aerials.min() >= -1e-12
        assert b1_dataset.train_aerials.max() < 1.5

    def test_resists_consistent_with_aerials(self, b1_dataset):
        recomputed = (b1_dataset.train_aerials > 0.225).astype(np.uint8)
        np.testing.assert_array_equal(recomputed, b1_dataset.train_resists)

    def test_reproducible_with_seed(self):
        a = build_dataset("B1", seed=3, spec=SPEC)
        b = build_dataset("B1", seed=3, spec=SPEC)
        np.testing.assert_array_equal(a.train_masks, b.train_masks)
        np.testing.assert_array_equal(a.test_aerials, b.test_aerials)

    def test_engine_label(self, b1_dataset):
        assert b1_dataset.litho_engine == "Lithosim"
        b2m = build_dataset("B2m", seed=0, spec=SPEC_B2M)
        assert b2m.litho_engine == "Calibre-like"

    def test_b1opc_is_test_only_and_differs_from_b1(self):
        b1 = build_dataset("B1", seed=0, spec=SPEC)
        b1opc = build_dataset("B1opc", seed=0, spec=SPEC)
        assert b1opc.num_train == 0
        assert b1opc.num_test == b1.num_test
        assert not np.array_equal(b1opc.test_masks, b1.test_masks)

    def test_describe_row(self, b1_dataset):
        row = b1_dataset.describe()
        assert row["dataset"] == "B1"
        assert row["train"] == 3
        assert row["litho_engine"] == "Lithosim"


class TestTrainFraction:
    def test_fraction_counts(self, b1_dataset):
        subset = b1_dataset.train_fraction(0.34)
        assert subset.num_train == 1
        assert subset.num_test == b1_dataset.num_test

    def test_full_fraction_keeps_everything(self, b1_dataset):
        assert b1_dataset.train_fraction(1.0).num_train == b1_dataset.num_train

    def test_invalid_fraction(self, b1_dataset):
        with pytest.raises(ValueError):
            b1_dataset.train_fraction(0.0)
        with pytest.raises(ValueError):
            b1_dataset.train_fraction(1.5)

    def test_subset_masks_come_from_parent(self, b1_dataset):
        subset = b1_dataset.train_fraction(0.67, seed=1)
        for mask in subset.train_masks:
            assert any(np.array_equal(mask, parent) for parent in b1_dataset.train_masks)


class TestMergeAndSuite:
    def test_merge_concatenates(self):
        b2m = build_dataset("B2m", seed=0, spec=SPEC_B2M)
        b2v = build_dataset("B2v", seed=1, spec=SPEC_B2V)
        merged = merge_datasets(b2m, b2v)
        assert merged.num_train == b2m.num_train + b2v.num_train
        assert merged.num_test == b2m.num_test + b2v.num_test
        assert merged.name == "B2m+B2v"

    def test_merge_rejects_mismatched_geometry(self):
        b2m = build_dataset("B2m", seed=0, spec=SPEC_B2M)
        other = build_dataset("B2v", seed=0, spec=DatasetSpec("B2v", 2, 2, 16, 32.0))
        with pytest.raises(ValueError):
            merge_datasets(b2m, other)

    def test_validation_rejects_bad_arrays(self):
        with pytest.raises(ValueError):
            LithoDataset(name="bad",
                         train_masks=np.zeros((2, 4)), train_aerials=np.zeros((2, 4, 4)),
                         train_resists=np.zeros((2, 4, 4)), test_masks=np.zeros((2, 4, 4)),
                         test_aerials=np.zeros((2, 4, 4)), test_resists=np.zeros((2, 4, 4)),
                         pixel_size_nm=8.0, litho_engine="x")

    def test_build_benchmark_suite_tiny(self):
        suite = build_benchmark_suite(preset="tiny", seed=0, include_opc=False)
        assert set(suite) == {"B1", "B2m", "B2v", "B2m+B2v"}
        assert suite["B2m+B2v"].num_train == suite["B2m"].num_train + suite["B2v"].num_train
