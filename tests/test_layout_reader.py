"""Windowed layout readers (repro.layout): protocol, index, files, wiring.

The headline invariant of the subsystem is pinned here: reader-fed streaming
imaging is **bit-for-bit identical** to the dense-array path, across guard
bands, backends, precisions and the sharded executor — and campaign identity
comes from the reader's canonical shape digest without the dense raster ever
existing.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    EngineSpec,
    ExecutionEngine,
    ShardedExecutor,
    TilingSpec,
    extract_tiles,
    iter_tile_batches,
    plan_tiles,
)
from repro.layout import (
    ArrayLayoutReader,
    GeometryLayoutReader,
    array_digest,
    as_layout_reader,
    is_layout_file,
    is_layout_reader,
    load_layout_file,
    source_digest,
)
from repro.masks.geometry import Polygon, Rect
from repro.masks.io import save_layout
from repro.masks.layout import Layout
from repro.optics.simulator import OpticsConfig
from repro.sweep import (
    CampaignStore,
    FocusExposureGrid,
    ProcessWindowSweep,
    layout_digest,
)


def random_layout(seed: int = 0, extent_nm: float = 768.0,
                  shapes: int = 120) -> Layout:
    rng = np.random.default_rng(seed)
    layout = Layout(extent_nm=extent_nm)
    for _ in range(shapes):
        x, y = rng.uniform(0, extent_nm - 64, 2)
        w, h = rng.uniform(16, 90, 2)
        layout.add("m1", Rect(float(x), float(y), float(w), float(h)))
    return layout


@pytest.fixture(scope="module")
def geometry_reader() -> GeometryLayoutReader:
    return GeometryLayoutReader.from_layout(random_layout(), shape=(96, 96))


@pytest.fixture(scope="module")
def dense(geometry_reader) -> np.ndarray:
    return geometry_reader.materialise()


class TestArrayLayoutReader:
    def test_windows_equal_dense_slices(self):
        rng = np.random.default_rng(3)
        dense = rng.random((40, 56))
        reader = ArrayLayoutReader(dense)
        assert reader.shape == (40, 56)
        assert is_layout_reader(reader)
        np.testing.assert_array_equal(reader.read_window(4, 8, 10, 12),
                                      dense[4:14, 8:20])

    def test_out_of_bounds_is_zero_padded(self):
        dense = np.ones((8, 8))
        reader = ArrayLayoutReader(dense)
        window = reader.read_window(-2, 6, 4, 4)
        assert window.shape == (4, 4)
        assert window[:2].sum() == 0          # above the layout
        assert window[2:, 2:].sum() == 0      # right of the layout
        np.testing.assert_array_equal(window[2:, :2], 1.0)
        assert reader.read_window(100, 100, 4, 4).sum() == 0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            ArrayLayoutReader(np.zeros(5))
        with pytest.raises(ValueError):
            ArrayLayoutReader(np.zeros((4, 4))).read_window(0, 0, 0, 4)

    def test_digest_matches_store_layout_digest(self):
        """Dense campaign identity is unchanged: same hash either spelling."""
        dense = np.arange(12.0).reshape(3, 4)
        assert ArrayLayoutReader(dense).digest() == layout_digest(dense)
        assert source_digest(dense) == array_digest(dense)

    def test_as_layout_reader_passthrough(self, geometry_reader):
        assert as_layout_reader(geometry_reader) is geometry_reader
        coerced = as_layout_reader(np.zeros((4, 4)))
        assert isinstance(coerced, ArrayLayoutReader)


class TestGeometryLayoutReader:
    def test_full_window_equals_dense_rasterize(self):
        layout = random_layout(seed=7)
        reader = GeometryLayoutReader.from_layout(layout, shape=(128, 128))
        np.testing.assert_array_equal(reader.read_window(0, 0, 128, 128),
                                      layout.rasterize("m1", 128))

    @given(row=st.integers(-16, 120), col=st.integers(-16, 120),
           height=st.integers(1, 64), width=st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_any_window_equals_dense_window(self, geometry_reader, dense,
                                            row, col, height, width):
        np.testing.assert_array_equal(
            geometry_reader.read_window(row, col, height, width),
            ArrayLayoutReader(dense).read_window(row, col, height, width))

    def test_window_queries_touch_o_window_shapes(self, geometry_reader):
        """A tile-sized window touches a small fraction of the index."""
        geometry_reader.read_window(32, 32, 24, 24)
        assert 0 < geometry_reader.last_candidates < \
            geometry_reader.shape_count() / 2

    def test_polygons_decompose_and_rasterise(self):
        poly = Polygon(((0, 0), (40, 0), (40, 16), (16, 16), (16, 40),
                        (0, 40)))
        reader = GeometryLayoutReader({"m": [poly]}, pixel_size_nm=4.0,
                                      extent_nm=64.0)
        from repro.masks.geometry import rasterize

        np.testing.assert_array_equal(reader.read_window(0, 0, 16, 16),
                                      rasterize(poly.to_rects(), 16, 4.0))

    def test_layer_selection_unions_only_chosen_layers(self):
        shapes = {"a": [Rect(0, 0, 32, 32)], "b": [Rect(32, 32, 32, 32)]}
        both = GeometryLayoutReader(shapes, pixel_size_nm=8.0, extent_nm=64.0)
        only_a = GeometryLayoutReader(shapes, pixel_size_nm=8.0,
                                      extent_nm=64.0, layers=("a",))
        assert both.materialise().sum() == 32
        assert only_a.materialise().sum() == 16

    def test_digest_is_canonical(self):
        layout = random_layout(seed=11, shapes=40)
        reversed_layout = Layout(extent_nm=layout.extent_nm)
        for shape in reversed(layout.shapes("m1")):
            reversed_layout.add("m1", shape)
        make = lambda lay: GeometryLayoutReader.from_layout(lay, shape=(64, 64))
        assert make(layout).digest() == make(reversed_layout).digest()
        # shapes that rasterise outside the raster do not perturb identity
        outside = Layout(extent_nm=layout.extent_nm)
        for shape in layout.shapes("m1"):
            outside.add("m1", shape)
        outside.add("m1", Rect(10_000.0, 10_000.0, 5.0, 5.0))
        assert make(outside).digest() == make(layout).digest()
        # but real content changes do
        changed = Layout(extent_nm=layout.extent_nm)
        for shape in layout.shapes("m1"):
            changed.add("m1", shape)
        changed.add("m1", Rect(8.0, 8.0, 64.0, 64.0))
        assert make(changed).digest() != make(layout).digest()
        # bucket size is a performance knob, never identity
        fine = GeometryLayoutReader.from_layout(layout, shape=(64, 64),
                                                bucket_px=16)
        assert fine.digest() == make(layout).digest()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GeometryLayoutReader({}, pixel_size_nm=4.0)  # no shape/extent
        with pytest.raises(ValueError):
            GeometryLayoutReader({}, pixel_size_nm=0.0, extent_nm=64.0)
        with pytest.raises(ValueError):
            GeometryLayoutReader({}, pixel_size_nm=4.0, extent_nm=64.0,
                                 bucket_px=0)


class TestLayoutFiles:
    def test_json_roundtrip_with_polygons(self, tmp_path):
        layout = Layout(extent_nm=256.0)
        layout.add("m1", Rect(16, 16, 64, 32))
        path = save_layout(layout, str(tmp_path / "chip.json"))
        document = json.loads(open(path).read())
        document["polygons"] = {"m1": [[[0, 200], [48, 200], [48, 224],
                                        [24, 224], [24, 240], [0, 240]]]}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        reader = load_layout_file(path, pixel_size_nm=8.0)
        assert reader.shape == (32, 32)
        assert reader.shape_count() > 1  # rect + decomposed polygon
        # the rect occupies 8x4 px starting at (2, 2)
        np.testing.assert_array_equal(
            reader.read_window(2, 2, 4, 8), 1.0)

    def test_gds_text_loader(self, tmp_path):
        path = tmp_path / "chip.gdstxt"
        path.write_text("\n".join([
            "HEADER 600", "BGNLIB", "UNITS 0.001 1e-9", "BGNSTR",
            "STRNAME TOP",
            "BOUNDARY", "LAYER 1",
            "XY 0 0 128 0 128 64 0 64 0 0", "ENDEL",
            "BOUNDARY", "LAYER 2",
            "XY 160 160 224 160 224 224 160 224 160 160", "ENDEL",
            "ENDSTR", "ENDLIB"]))
        reader = load_layout_file(str(path), pixel_size_nm=8.0)
        assert sorted(reader.layers) == ["1", "2"]
        assert reader.shape == (28, 28)  # bounding box 224 nm, ceil / 8
        assert int(reader.materialise().sum()) == 16 * 8 + 8 * 8

    def test_truncated_binary_gds_fails_loudly(self, tmp_path):
        """Binary GDSII now *loads* (see test_layout_hierarchy.py); a
        truncated stream must still fail with a clear, offset-bearing
        error — not a decode traceback or zero shapes."""
        from repro.layout import LayoutFormatError

        path = tmp_path / "chip.gds"
        # a real binary GDSII header, cut off mid-BGNLIB record
        path.write_bytes(bytes([0, 6, 0, 2, 2, 0x58]) + b"\x00\x1c\x01\x02")
        with pytest.raises(LayoutFormatError, match="offset"):
            load_layout_file(str(path), pixel_size_nm=8.0)

    def test_non_gds_binary_rejected_with_clear_error(self, tmp_path):
        """NUL-ridden files without a GDSII HEADER stay a loud error."""
        from repro.layout import LayoutFormatError

        path = tmp_path / "blob.gds"
        path.write_bytes(b"\x89PNG\x00\x00\x00\x0d" * 8)
        with pytest.raises(LayoutFormatError,
                           match="neither binary GDSII nor GDSII text"):
            load_layout_file(str(path), pixel_size_nm=8.0)

    def test_suffix_dispatch_and_errors(self, tmp_path):
        assert is_layout_file("chip.json")
        assert is_layout_file("chip.gdstxt")
        assert not is_layout_file("chip.npz")
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_layout_file(str(bad), pixel_size_nm=8.0)
        empty = tmp_path / "empty.gdstxt"
        empty.write_text("HEADER 600\n")
        with pytest.raises(ValueError):
            load_layout_file(str(empty), pixel_size_nm=8.0)
        with pytest.raises(FileNotFoundError):
            load_layout_file(str(tmp_path / "missing.json"), pixel_size_nm=8.0)


class TestEngineWiring:
    """Reader-fed imaging == dense-array imaging, bit for bit."""

    def test_extract_tiles_reader_equals_dense(self, geometry_reader, dense):
        spec = TilingSpec(tile_px=32, guard_px=8)
        reader_tiles, reader_places = extract_tiles(geometry_reader, spec)
        dense_tiles, dense_places = extract_tiles(dense, spec)
        assert reader_places == dense_places
        np.testing.assert_array_equal(reader_tiles, dense_tiles)

    def test_iter_tile_batches_accepts_reader(self, geometry_reader, dense):
        spec = TilingSpec(tile_px=32, guard_px=8)
        placements = plan_tiles(*geometry_reader.shape, spec)
        batches = [tiles for tiles, _ in
                   iter_tile_batches(geometry_reader, placements, spec, 3)]
        stacked = np.concatenate(batches, axis=0)
        dense_tiles, _ = extract_tiles(dense, spec)
        np.testing.assert_array_equal(stacked, dense_tiles)

    @pytest.mark.parametrize("backend_name,precision", [
        ("numpy", "float64"), ("numpy", "float32"),
        ("scipy", "float64"), ("scipy", "float32"),
    ])
    def test_engine_image_layout_bitwise(self, geometry_reader, dense,
                                         backend_name, precision):
        if backend_name == "scipy":
            pytest.importorskip("scipy.fft")
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
        engine = ExecutionEngine.for_optics(config, fft_backend=backend_name,
                                            precision=precision)
        ref = engine.image_layout(dense, tile_px=32, guard_px=8)
        for kwargs in ({}, {"streaming": True}, {"batch_tiles": 2}):
            imaged = engine.image_layout(geometry_reader, tile_px=32,
                                         guard_px=8, **kwargs)
            assert imaged.num_tiles == ref.num_tiles
            np.testing.assert_array_equal(np.asarray(imaged.aerial),
                                          ref.aerial)
            np.testing.assert_array_equal(np.asarray(imaged.resist),
                                          ref.resist)

    def test_engine_reader_memmap_out_dir(self, geometry_reader, dense,
                                          tmp_path):
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
        engine = ExecutionEngine.for_optics(config)
        ref = engine.image_layout(dense, tile_px=32, guard_px=8)
        out = engine.image_layout(geometry_reader, tile_px=32, guard_px=8,
                                  out_dir=str(tmp_path / "stream"))
        np.testing.assert_array_equal(np.asarray(out.aerial), ref.aerial)
        assert os.path.exists(tmp_path / "stream" / "meta.json")

    def test_sharded_image_layout_bitwise(self, geometry_reader, dense):
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
        engine = ExecutionEngine.for_optics(config)
        ref = engine.image_layout(dense, tile_px=32, guard_px=8)
        with ShardedExecutor(num_workers=1) as executor:
            imaged = executor.image_layout(EngineSpec(config=config),
                                           geometry_reader, tile_px=32,
                                           guard_px=8)
        np.testing.assert_array_equal(np.asarray(imaged.aerial), ref.aerial)


class TestSweepWiring:
    def test_sweep_reader_equals_dense(self, geometry_reader, dense):
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
        grid = FocusExposureGrid(focus_values_nm=(-40.0, 0.0, 40.0),
                                 dose_values=(0.95, 1.0, 1.05))
        via_reader = ProcessWindowSweep(config).run(geometry_reader,
                                                    grid=grid, guard_px=8)
        via_dense = ProcessWindowSweep(config).run(dense, grid=grid,
                                                   guard_px=8)
        assert via_reader.window == via_dense.window

    def test_multi_tile_reader_takes_streaming_path(self, geometry_reader,
                                                    monkeypatch):
        """Readers must never materialise the full tile stack in a sweep."""
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
        sweep = ProcessWindowSweep(config)
        streaming_flags = []
        original = type(sweep.executor).image_layout

        def spy(self, spec, layout, **kwargs):
            streaming_flags.append(kwargs.get("streaming"))
            return original(self, spec, layout, **kwargs)

        monkeypatch.setattr(type(sweep.executor), "image_layout", spy)
        grid = FocusExposureGrid(focus_values_nm=(0.0,), dose_values=(1.0,))
        sweep.run(geometry_reader, grid=grid, guard_px=8)
        assert streaming_flags and all(streaming_flags)

    def test_campaign_identity_uses_reader_digest(self, geometry_reader,
                                                  tmp_path):
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
        grid = FocusExposureGrid(focus_values_nm=(0.0,), dose_values=(1.0,))
        store = CampaignStore(str(tmp_path / "campaign"))
        ProcessWindowSweep(config).run(geometry_reader, grid=grid, guard_px=8,
                                       store=store)
        manifest = CampaignStore(str(tmp_path / "campaign")).read_manifest()
        assert manifest["campaign"]["layout_sha256"] == \
            geometry_reader.digest()
        assert manifest["campaign"]["layout_shape"] == \
            list(geometry_reader.shape)

    def test_reader_campaign_resumes_without_recompute(self, geometry_reader,
                                                       tmp_path):
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
        grid = FocusExposureGrid(focus_values_nm=(-40.0, 0.0),
                                 dose_values=(1.0, 1.05))
        store_dir = str(tmp_path / "campaign")
        first = ProcessWindowSweep(config).run(geometry_reader, grid=grid,
                                               guard_px=8, store=store_dir)
        assert first.computed_conditions == len(grid)
        again = ProcessWindowSweep(config).run(geometry_reader, grid=grid,
                                               guard_px=8, store=store_dir)
        assert again.computed_conditions == 0
        assert again.skipped_conditions == len(grid)
        assert again.window == first.window

    def test_single_tile_reader(self):
        layout = Layout(extent_nm=256.0)
        layout.add("m1", Rect(32, 64, 192, 96))
        reader = GeometryLayoutReader.from_layout(layout, shape=(32, 32))
        config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
        grid = FocusExposureGrid(focus_values_nm=(0.0,), dose_values=(1.0,))
        via_reader = ProcessWindowSweep(config).run(reader, grid=grid)
        via_dense = ProcessWindowSweep(config).run(reader.materialise(),
                                                   grid=grid)
        assert via_reader.window == via_dense.window
        assert via_reader.num_tiles == 1
