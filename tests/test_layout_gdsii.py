"""Binary GDSII record stream (repro.layout.gdsii): parse, emit, fuzz.

Pinned guarantees:

* the 8-byte excess-64 real codec round-trips every float64 the emitter
  produces, bit for bit,
* ``parse_gds(write_gds(library))`` reproduces the library, and re-emitting
  yields the **identical byte stream** — for every golden fixture under
  ``tests/data/`` (which were themselves written by
  ``tools/make_gds_fixtures.py``, so the goldens also pin the emitter),
* structural violations (missing HEADER, unknown records, undefined
  reference targets, off-axis angles, degenerate arrays, duplicate
  structures) raise :class:`LayoutFormatError` naming the file offset, and
* **fuzzing**: truncating any fixture at *every* byte offset, and corrupting
  any single byte (deterministic sweep + hypothesis), either parses cleanly
  or raises ``LayoutFormatError`` — never ``struct.error`` / ``IndexError``
  / an infinite loop.
"""

import glob
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.gdsii import (
    GDSBoundary,
    GDSCell,
    GDSReference,
    LayoutFormatError,
    _decode_real8,
    _encode_real8,
    iter_records,
    looks_like_binary_gds,
    parse_gds,
    write_gds,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
FIXTURES = sorted(glob.glob(os.path.join(DATA_DIR, "*.gds")))
FIXTURE_IDS = [os.path.basename(path) for path in FIXTURES]


def fixture_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def test_fixtures_are_committed():
    assert {os.path.basename(p) for p in FIXTURES} >= {
        "flat_boundaries.gds", "hier4.gds", "aref_grid.gds",
        "units_fine.gds"}


class TestReal8Codec:
    @staticmethod
    def roundtrip(value: float) -> float:
        return _decode_real8(int.from_bytes(_encode_real8(value), "big"))

    @given(st.floats(min_value=1e-12, max_value=1e12) |
           st.floats(min_value=-1e12, max_value=-1e-12) |
           st.just(0.0))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_exact(self, value):
        assert self.roundtrip(value) == value

    def test_known_encodings(self):
        # 1.0 = 0x10/256 * 16^1: sign 0, exponent 64 + 1, mantissa 0x10...0
        assert _encode_real8(1.0) == bytes.fromhex("4110000000000000")
        assert _decode_real8(0x4110000000000000) == 1.0
        assert _encode_real8(0.0) == b"\x00" * 8
        assert _encode_real8(-1.0)[0] & 0x80


class TestTokenizer:
    @pytest.mark.parametrize("path", FIXTURES, ids=FIXTURE_IDS)
    def test_stream_shape(self, path):
        records = list(iter_records(fixture_bytes(path), path))
        assert records[0].name == "HEADER"
        assert records[-1].name == "ENDLIB"
        offsets = [record.offset for record in records]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0

    def test_probe(self):
        assert looks_like_binary_gds(fixture_bytes(FIXTURES[0])[:6])
        assert not looks_like_binary_gds(b"HEADER 600\n")
        assert not looks_like_binary_gds(b"\x00")

    def test_odd_record_size_rejected(self):
        with pytest.raises(LayoutFormatError, match="offset"):
            list(iter_records(b"\x00\x05\x00\x02\x02", "odd"))

    def test_undersized_record_rejected(self):
        with pytest.raises(LayoutFormatError, match="offset"):
            list(iter_records(b"\x00\x02\x00\x02", "small"))

    def test_missing_endlib_rejected(self):
        data = b"\x00\x06\x00\x02\x02\x58"  # lone HEADER record
        with pytest.raises(LayoutFormatError, match="ENDLIB"):
            list(iter_records(data, "noend"))


class TestParser:
    def test_flat_fixture(self):
        library = parse_gds(
            fixture_bytes(os.path.join(DATA_DIR, "flat_boundaries.gds")),
            name="flat_boundaries.gds")
        (cell,) = library.cells.values()
        assert cell.name == "FLAT"
        assert sorted({b.layer for b in cell.boundaries}) == [1, 2]
        assert not cell.references

    def test_fine_units_scale_coordinates(self):
        flat = parse_gds(fixture_bytes(
            os.path.join(DATA_DIR, "flat_boundaries.gds")))
        fine = parse_gds(fixture_bytes(
            os.path.join(DATA_DIR, "units_fine.gds")))
        assert flat.unit_nm == 1.0
        assert fine.unit_nm == 0.5
        flat_xy = flat.cells["FLAT"].boundaries[0].xy
        fine_xy = fine.cells["FLAT"].boundaries[0].xy
        # database coordinates doubled, nm geometry identical
        assert [(x * 2, y * 2) for x, y in flat_xy] == list(fine_xy)

    def test_hier4_structure(self):
        library = parse_gds(fixture_bytes(os.path.join(DATA_DIR,
                                                       "hier4.gds")))
        assert list(library.cells) == ["UNIT", "PAIR", "ROW", "BLOCK",
                                       "CHIP"]
        assert list(library.top_cells) == ["CHIP"]
        (aref,) = library.cells["CHIP"].references
        assert (aref.columns, aref.rows) == (2, 2)
        assert aref.column_vector == (288.0, 0.0)
        rotated = library.cells["PAIR"].references[1]
        assert rotated.quarter_turns == 2

    def test_missing_header(self):
        with pytest.raises(LayoutFormatError, match="HEADER"):
            parse_gds(b"\x00\x04\x04\x00", name="x")  # bare ENDLIB

    def test_text_gds_is_not_binary(self):
        with pytest.raises(LayoutFormatError, match="offset"):
            parse_gds(b"HEADER 600\nENDLIB\n", name="x")

    def test_undefined_reference_target(self):
        cells = {"TOP": GDSCell("TOP", [], [GDSReference("GHOST", (0, 0))])}
        data = write_gds(cells)
        with pytest.raises(LayoutFormatError, match="GHOST"):
            parse_gds(data, name="ghost")

    def test_duplicate_structure_name(self):
        cell = GDSCell("TWICE", [GDSBoundary(
            1, ((0, 0), (8, 0), (8, 8), (0, 8)))], [])
        data = write_gds({"TWICE": cell})
        # splice the single structure in twice
        records = list(iter_records(data, "dup"))
        begin = next(r.offset for r in records if r.name == "BGNSTR")
        end = next(r.offset for r in records if r.name == "ENDSTR")
        end += 4  # include the ENDSTR record itself
        doubled = data[:end] + data[begin:end] + data[end:]
        with pytest.raises(LayoutFormatError, match="duplicate"):
            parse_gds(doubled, name="dup")

    def test_off_axis_angle_rejected(self):
        cells = {
            "A": GDSCell("A", [GDSBoundary(1, ((0, 0), (8, 0), (8, 8),
                                               (0, 8)))], []),
            "TOP": GDSCell("TOP", [], [GDSReference("A", (0, 0),
                                                    quarter_turns=1)]),
        }
        data = write_gds(cells)
        # ANGLE 90.0 -> 45.0 by patching the encoded real in place
        patched = data.replace(_encode_real8(90.0), _encode_real8(45.0))
        assert patched != data
        with pytest.raises(LayoutFormatError, match="multiples of 90"):
            parse_gds(patched, name="angle")

    def test_degenerate_aref_rejected(self):
        cells = {
            "A": GDSCell("A", [GDSBoundary(1, ((0, 0), (8, 0), (8, 8),
                                               (0, 8)))], []),
            "TOP": GDSCell("TOP", [], [GDSReference(
                "A", (0, 0), columns=4, rows=1, column_vector=(0, 0),
                row_vector=(0, 0))]),
        }
        with pytest.raises(LayoutFormatError, match="zero column"):
            parse_gds(write_gds(cells), name="degenerate")

    def test_collinear_aref_rejected(self):
        cells = {
            "A": GDSCell("A", [GDSBoundary(1, ((0, 0), (8, 0), (8, 8),
                                               (0, 8)))], []),
            "TOP": GDSCell("TOP", [], [GDSReference(
                "A", (0, 0), columns=3, rows=3, column_vector=(16, 0),
                row_vector=(32, 0))]),
        }
        with pytest.raises(LayoutFormatError, match="collinear"):
            parse_gds(write_gds(cells), name="collinear")

    def test_error_message_carries_source_and_offset(self):
        try:
            parse_gds(fixture_bytes(FIXTURES[0])[:10], name="chip.gds")
        except LayoutFormatError as error:
            assert "chip.gds" in str(error)
            assert "offset" in str(error)
        else:  # pragma: no cover - defended by the fuzz suite
            pytest.fail("truncated stream parsed")


class TestEmitter:
    @pytest.mark.parametrize("path", FIXTURES, ids=FIXTURE_IDS)
    def test_parse_emit_is_byte_identical(self, path):
        data = fixture_bytes(path)
        library = parse_gds(data, name=path)
        assert write_gds(library) == data

    def test_transforms_roundtrip(self):
        cells = {
            "A": GDSCell("A", [GDSBoundary(1, ((0, 0), (8, 0), (8, 8),
                                               (0, 8)))], []),
            "TOP": GDSCell("TOP", [], [
                GDSReference("A", (10, 20)),
                GDSReference("A", (30, 40), quarter_turns=3),
                GDSReference("A", (-8, 4), reflect=True, mag=2.5),
                GDSReference("A", (0, 0), columns=3, rows=2,
                             column_vector=(16, 0), row_vector=(0, 24),
                             quarter_turns=1, reflect=True),
            ]),
        }
        library = parse_gds(write_gds(cells), name="transforms")
        refs = library.cells["TOP"].references
        assert [(r.quarter_turns, r.reflect, r.mag) for r in refs] == [
            (0, False, 1.0), (3, False, 1.0), (0, True, 2.5), (1, True, 1.0)]
        assert refs[3].column_vector == (16.0, 0.0)
        assert refs[3].row_vector == (0.0, 24.0)
        assert refs[2].origin == (-8, 4)

    def test_write_to_path(self, tmp_path):
        cells = {"A": GDSCell("A", [GDSBoundary(
            1, ((0, 0), (8, 0), (8, 8), (0, 8)))], [])}
        path = str(tmp_path / "out.gds")
        data = write_gds(cells, path)
        assert fixture_bytes(path) == data


class TestFuzz:
    """Corruption / truncation never escapes ``LayoutFormatError``."""

    @pytest.mark.parametrize("path", FIXTURES, ids=FIXTURE_IDS)
    def test_every_truncation_fails_loudly(self, path):
        data = fixture_bytes(path)
        for cut in range(len(data)):
            with pytest.raises(LayoutFormatError) as excinfo:
                parse_gds(data[:cut], name="trunc")
            assert "offset" in str(excinfo.value)

    @pytest.mark.parametrize("path", FIXTURES, ids=FIXTURE_IDS)
    def test_every_single_byte_corruption_is_contained(self, path):
        data = fixture_bytes(path)
        for offset in range(len(data)):
            for flip in (0x00, 0xFF, data[offset] ^ 0x80):
                corrupted = data[:offset] + bytes([flip]) + data[offset + 1:]
                try:
                    parse_gds(corrupted, name="corrupt")
                except LayoutFormatError:
                    pass  # loud and typed — exactly the contract

    @given(index=st.integers(0, len(FIXTURES) - 1), offset=st.integers(0),
           value=st.integers(0, 255), cut=st.integers(0))
    @settings(max_examples=150, deadline=None)
    def test_corrupt_then_truncate_is_contained(self, index, offset, value,
                                                cut):
        data = fixture_bytes(FIXTURES[index])
        offset %= len(data)
        mangled = data[:offset] + bytes([value]) + data[offset + 1:]
        mangled = mangled[:cut % (len(mangled) + 1)]
        try:
            parse_gds(mangled, name="fuzz")
        except LayoutFormatError as error:
            assert "fuzz" in str(error)

    @given(junk=st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_bytes_are_contained(self, junk):
        try:
            parse_gds(junk, name="junk")
        except LayoutFormatError:
            pass

    def test_truncated_file_fails_through_loader(self, tmp_path):
        """The files.py dispatch surfaces the same typed error."""
        from repro.layout import load_layout_file

        data = fixture_bytes(FIXTURES[0])
        for cut in (4, len(data) // 2, len(data) - 1):
            path = tmp_path / f"cut{cut}.gds"
            path.write_bytes(data[:cut])
            with pytest.raises(LayoutFormatError, match="offset"):
                load_layout_file(str(path), pixel_size_nm=8.0)
