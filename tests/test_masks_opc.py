"""Tests for the OPC substrate (rule-based OPC and ILT refinement)."""

import numpy as np
import pytest

from repro.masks.opc import ILTRefiner, RuleOPCSettings, apply_opc, rule_based_opc
from repro.optics.simulator import lithosim_engine


@pytest.fixture(scope="module")
def simple_mask():
    mask = np.zeros((48, 48))
    mask[16:32, 20:28] = 1.0
    return mask


@pytest.fixture(scope="module")
def opc_simulator():
    return lithosim_engine(tile_size_px=48, pixel_size_nm=20.0)


class TestRuleOPC:
    def test_output_is_binary_and_same_shape(self, simple_mask):
        corrected = rule_based_opc(simple_mask)
        assert corrected.shape == simple_mask.shape
        assert set(np.unique(corrected)).issubset({0.0, 1.0})

    def test_correction_contains_original_pattern(self, simple_mask):
        corrected = rule_based_opc(simple_mask)
        assert np.all(corrected[simple_mask > 0.5] == 1.0)

    def test_correction_adds_decoration(self, simple_mask):
        corrected = rule_based_opc(simple_mask)
        assert corrected.sum() > simple_mask.sum()

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            RuleOPCSettings(edge_bias_px=-1)

    def test_zero_bias_no_serif_still_adds_srafs(self, simple_mask):
        settings = RuleOPCSettings(edge_bias_px=0, serif_size_px=0,
                                   sraf_distance_px=5, sraf_width_px=1)
        corrected = rule_based_opc(simple_mask, settings)
        assert corrected.sum() > simple_mask.sum()

    def test_srafs_are_detached_from_main_pattern(self, simple_mask):
        """Assist features must not merge with the (biased) main pattern."""
        settings = RuleOPCSettings(edge_bias_px=1, serif_size_px=1,
                                   sraf_distance_px=6, sraf_width_px=1)
        corrected = rule_based_opc(simple_mask, settings)
        # There must be a dark moat between the biased pattern and the SRAF ring.
        from repro.masks.opc import _dilate

        main = _dilate(simple_mask, settings.edge_bias_px + 2)
        ring = corrected * (1 - main)
        assert ring.sum() > 0


class TestILT:
    def test_refiner_validation(self, opc_simulator):
        with pytest.raises(ValueError):
            ILTRefiner(opc_simulator, iterations=0)
        with pytest.raises(ValueError):
            ILTRefiner(opc_simulator, flip_fraction=0.9)

    def test_refiner_returns_binary_mask(self, opc_simulator, simple_mask):
        refined = ILTRefiner(opc_simulator, iterations=2).refine(simple_mask)
        assert set(np.unique(refined)).issubset({0.0, 1.0})
        assert refined.shape == simple_mask.shape

    def test_refiner_does_not_increase_print_error(self, opc_simulator, simple_mask):
        """A few ILT iterations must not print worse than the uncorrected mask."""
        target = simple_mask.copy()
        before = np.abs(opc_simulator.resist(simple_mask).astype(float) - target).sum()
        refined = ILTRefiner(opc_simulator, iterations=3).refine(simple_mask, target=target)
        after = np.abs(opc_simulator.resist(refined).astype(float) - target).sum()
        assert after <= before + 1e-9


class TestApplyOPC:
    def test_batch_shapes(self, simple_mask, opc_simulator):
        batch = np.stack([simple_mask, simple_mask])
        corrected = apply_opc(batch, simulator=opc_simulator, use_ilt=False)
        assert corrected.shape == batch.shape

    def test_single_mask_is_promoted_to_batch(self, simple_mask):
        corrected = apply_opc(simple_mask, use_ilt=False)
        assert corrected.shape == (1, *simple_mask.shape)

    def test_opc_changes_the_mask_distribution(self, simple_mask, opc_simulator):
        """The point of B1opc: the corrected masks differ substantially from the originals."""
        corrected = apply_opc(simple_mask, simulator=opc_simulator, use_ilt=True)[0]
        changed_pixels = np.abs(corrected - simple_mask).sum()
        assert changed_pixels > 0.2 * simple_mask.sum()
