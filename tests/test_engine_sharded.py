"""Tests for multiprocess sharding (repro.engine.sharded) and its cache-warm protocol.

Pinned guarantees:

* sharded output is bit-for-bit the serial output (deterministic stitch
  order), with fork and spawn worker processes alike,
* the serial fallback engages for one worker, tiny batches and broken pools,
* ``EngineSpec`` round-trips focus changes and keys the kernel cache
  correctly, and
* the disk-backed kernel cache hands a pre-computed bank to a *fresh
  process* with zero TCC computations and zero eigendecompositions — the
  mechanism every sharded worker relies on.
"""

import json
import multiprocessing
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.engine import (
    EngineSpec,
    KernelBankCache,
    ShardedExecutor,
    available_workers,
)
from repro.optics import OpticsConfig
from repro.optics.pupil import Pupil
from repro.optics.source import AnnularSource, CircularSource

CONFIG = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, max_socs_order=8)
SOURCE = CircularSource(sigma=0.6)


@pytest.fixture(scope="module")
def spec():
    return EngineSpec(config=CONFIG, source=SOURCE)


@pytest.fixture(scope="module")
def masks():
    return (np.random.default_rng(21).random((6, 32, 32)) > 0.7).astype(float)


class TestEngineSpec:
    def test_resolved_defaults_match_for_optics(self):
        bare = EngineSpec(config=CONFIG)
        source, pupil = bare.resolved_optics()
        assert isinstance(source, AnnularSource)
        assert pupil.defocus_nm == CONFIG.defocus_nm

    def test_with_focus_changes_fingerprint_and_keeps_aberrations(self, spec):
        comatic = EngineSpec(config=CONFIG, source=SOURCE,
                             pupil=Pupil(zernike_coefficients={8: 0.05}))
        refocused = comatic.with_focus(75.0)
        assert refocused.config.defocus_nm == 75.0
        assert refocused.pupil.defocus_nm == 75.0
        assert refocused.pupil.zernike_coefficients == {8: 0.05}
        assert refocused.fingerprint() != comatic.fingerprint()
        assert comatic.with_focus(75.0).fingerprint() == refocused.fingerprint()

    def test_build_uses_injected_cache(self, spec, tmp_path):
        cache = KernelBankCache(cache_dir=str(tmp_path))
        engine = spec.build(cache=cache)
        assert cache.stats.decompositions == 1
        assert engine.order > 0
        assert len(os.listdir(tmp_path)) == 1  # bank persisted for workers

    def test_spec_is_picklable(self, spec):
        import pickle

        clone = pickle.loads(pickle.dumps(spec.with_focus(30.0)))
        assert clone.fingerprint() == spec.with_focus(30.0).fingerprint()


class TestShardedExecutor:
    @pytest.mark.parametrize("backend_name,precision", [
        ("numpy", "float64"),
        ("numpy", "float32"),
        ("scipy", "float64"),
        ("scipy", "float32"),
    ])
    def test_sharded_equals_serial_under_every_compute_policy(
            self, masks, tmp_path, backend_name, precision):
        """The EngineSpec round-trip carries backend + precision: sharded
        output is bit-for-bit the serial output under every combination."""
        if backend_name == "scipy":
            pytest.importorskip("scipy.fft")
        policy_spec = EngineSpec(config=CONFIG, source=SOURCE,
                                 fft_backend=backend_name, precision=precision)
        serial = ShardedExecutor(num_workers=1, cache_dir=str(tmp_path))
        reference = serial.aerial_batch(policy_spec, masks)
        with ShardedExecutor(num_workers=2, cache_dir=str(tmp_path)) as sharded:
            result = sharded.aerial_batch(policy_spec, masks)
            assert sharded.last_used_pool
        np.testing.assert_array_equal(result, reference)
        expected_dtype = np.float32 if precision == "float32" else np.float64
        assert result.dtype == expected_dtype

    def test_worker_spec_splits_fft_thread_budget(self, spec):
        executor = ShardedExecutor(num_workers=4)
        shipped = executor._worker_spec(spec, active_workers=4)
        assert shipped.fft_workers == max(1, available_workers() // 4)
        # Small batches activate fewer workers than the pool size: the
        # budget divides over the shards that actually run.
        assert executor._worker_spec(spec, active_workers=2).fft_workers == \
            max(1, available_workers() // 2)
        pinned = EngineSpec(config=CONFIG, source=SOURCE, fft_workers=2)
        assert executor._worker_spec(pinned, 4).fft_workers == 2  # explicit wins

    def test_sharded_equals_serial_bit_for_bit(self, spec, masks, tmp_path):
        serial = ShardedExecutor(num_workers=1, cache_dir=str(tmp_path))
        reference = serial.aerial_batch(spec, masks)
        assert not serial.last_used_pool
        with ShardedExecutor(num_workers=2, cache_dir=str(tmp_path)) as sharded:
            result = sharded.aerial_batch(spec, masks)
            assert sharded.last_used_pool
            assert sharded.last_num_shards == 2
        np.testing.assert_array_equal(result, reference)

    def test_spawn_workers_match_serial(self, spec, masks, tmp_path):
        """Spawn context: workers inherit nothing and must use the disk cache."""
        serial = ShardedExecutor(num_workers=1, cache_dir=str(tmp_path))
        reference = serial.aerial_batch(spec, masks)
        context = multiprocessing.get_context("spawn")
        with ShardedExecutor(num_workers=2, cache_dir=str(tmp_path),
                             mp_context=context) as sharded:
            result = sharded.aerial_batch(spec, masks)
            assert sharded.last_used_pool
        np.testing.assert_array_equal(result, reference)

    def test_zero_workers_falls_back_to_serial(self, spec, masks):
        executor = ShardedExecutor(num_workers=0)
        result = executor.aerial_batch(spec, masks)
        assert not executor.last_used_pool
        reference = ShardedExecutor(num_workers=1).aerial_batch(spec, masks)
        np.testing.assert_array_equal(result, reference)

    def test_engine_memo_is_bounded(self, tmp_path):
        from repro.engine.sharded import ENGINE_MEMO_LIMIT

        executor = ShardedExecutor(num_workers=1, cache_dir=str(tmp_path))
        base = EngineSpec(config=CONFIG, source=SOURCE)
        for index in range(ENGINE_MEMO_LIMIT + 3):
            executor.warm(base.with_focus(10.0 * index))
        assert len(executor._local_engines) == ENGINE_MEMO_LIMIT
        # The backing cache was trimmed after each build: banks live on disk,
        # not in memory, so long campaigns stay bounded.
        assert len(executor._local_cache) == 0
        assert executor._local_cache.stats.decompositions == ENGINE_MEMO_LIMIT + 3

    def test_single_tile_batch_stays_serial(self, spec, masks):
        executor = ShardedExecutor(num_workers=4)
        result = executor.aerial_batch(spec, masks[:1])
        assert not executor.last_used_pool
        assert result.shape == (1, 32, 32)

    def test_empty_batch(self, spec):
        executor = ShardedExecutor(num_workers=2)
        assert executor.aerial_batch(spec, np.zeros((0, 32, 32))).shape == (0, 32, 32)

    def test_shard_slices_partition_deterministically(self):
        executor = ShardedExecutor(num_workers=3)
        slices = executor._shard_slices(8)
        assert [(s.start, s.stop) for s in slices] == [(0, 3), (3, 6), (6, 8)]

    def test_image_layout_matches_in_process_engine(self, spec, tmp_path):
        layout = (np.random.default_rng(4).random((70, 90)) > 0.75).astype(float)
        with ShardedExecutor(num_workers=2, cache_dir=str(tmp_path)) as executor:
            sharded = executor.image_layout(spec, layout, guard_px=8)
        reference = spec.build(cache=KernelBankCache()).image_layout(
            layout, guard_px=8)
        np.testing.assert_array_equal(sharded.aerial, reference.aerial)
        np.testing.assert_array_equal(sharded.resist, reference.resist)
        assert sharded.num_tiles == reference.num_tiles

    def test_resist_batch_binary(self, spec, masks):
        executor = ShardedExecutor(num_workers=1)
        resist = executor.resist_batch(spec, masks)
        assert set(np.unique(resist)).issubset({0, 1})

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedExecutor(num_workers=-1)
        with pytest.raises(ValueError):
            ShardedExecutor(min_shard_tiles=0)
        with pytest.raises(ValueError):
            ShardedExecutor(num_workers=1).aerial_batch(
                EngineSpec(config=CONFIG), np.zeros((4, 4)))

    def test_available_workers_positive(self):
        assert available_workers() >= 1


class _FlakyPool:
    """A stand-in pool: serves the first ``healthy`` submits in-process,
    then raises ``BrokenProcessPool`` — a deterministic mid-campaign death."""

    def __init__(self, healthy: int):
        self.healthy = healthy
        self.submits = 0

    def submit(self, fn, *args, **kwargs):
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        self.submits += 1
        future = Future()
        if self.submits <= self.healthy:
            future.set_result(fn(*args, **kwargs))
        else:
            future.set_exception(BrokenProcessPool("pool died mid-campaign"))
        return future

    def shutdown(self, *args, **kwargs):
        pass


class TestCampaignScheduling:
    """(focus, shard) work units over one shared pool — and its fallbacks."""

    def _specs(self, spec):
        return [spec.with_focus(focus) for focus in (0.0, 60.0, 120.0)]

    def _serial_reference(self, specs, masks, tmp_path):
        executor = ShardedExecutor(num_workers=1, cache_dir=str(tmp_path))
        return [executor.warm(spec).aerial_batch(masks) for spec in specs]

    def test_campaign_matches_serial_bit_for_bit(self, spec, masks, tmp_path):
        specs = self._specs(spec)
        reference = self._serial_reference(specs, masks, tmp_path)
        with ShardedExecutor(num_workers=2, cache_dir=str(tmp_path)) as ex:
            results = dict(ex.campaign_aerials(specs, masks))
            assert ex.last_used_pool
        assert set(results) == {0, 1, 2}
        for index, expected in enumerate(reference):
            np.testing.assert_array_equal(results[index], expected)

    def test_campaign_serial_executor_yields_in_order(self, spec, masks,
                                                      tmp_path):
        specs = self._specs(spec)
        reference = self._serial_reference(specs, masks, tmp_path)
        executor = ShardedExecutor(num_workers=1, cache_dir=str(tmp_path))
        indices = []
        for index, aerial in executor.campaign_aerials(specs, masks):
            indices.append(index)
            np.testing.assert_array_equal(aerial, reference[index])
        assert indices == [0, 1, 2]
        assert not executor.last_used_pool

    def test_campaign_empty_specs(self, spec, masks):
        executor = ShardedExecutor(num_workers=2)
        assert list(executor.campaign_aerials([], masks)) == []

    def test_broken_pool_mid_campaign_degrades_to_serial(self, spec, masks,
                                                         tmp_path):
        """The pool dies after the first focus: remaining foci must be
        computed serially with identical results — not raise."""
        specs = self._specs(spec)
        reference = self._serial_reference(specs, masks, tmp_path)
        executor = ShardedExecutor(num_workers=2, cache_dir=str(tmp_path))
        shards = len(executor._shard_slices(masks.shape[0]))
        executor._pool = _FlakyPool(healthy=shards)  # focus 0 succeeds
        results = dict(executor.campaign_aerials(specs, masks))
        assert executor._pool is None  # close() ran on the broken pool
        assert set(results) == {0, 1, 2}
        for index, expected in enumerate(reference):
            np.testing.assert_array_equal(results[index], expected)
        executor.close()  # idempotent after the fallback

    def test_pool_broken_from_the_start_degrades_to_serial(self, spec, masks,
                                                           tmp_path):
        specs = self._specs(spec)
        reference = self._serial_reference(specs, masks, tmp_path)
        executor = ShardedExecutor(num_workers=2, cache_dir=str(tmp_path))
        executor._pool = _FlakyPool(healthy=0)
        results = dict(executor.campaign_aerials(specs, masks))
        for index, expected in enumerate(reference):
            np.testing.assert_array_equal(results[index], expected)
        assert not executor.last_used_pool


class TestStreamingThroughExecutor:
    def test_streaming_layout_matches_serial_engine(self, spec, tmp_path):
        layout = (np.random.default_rng(7).random((70, 90)) > 0.75).astype(float)
        reference = spec.build(cache=KernelBankCache()).image_layout(
            layout, guard_px=8)
        with ShardedExecutor(num_workers=2, cache_dir=str(tmp_path)) as ex:
            streamed = ex.image_layout(spec, layout, guard_px=8,
                                       streaming=True, batch_tiles=3)
        np.testing.assert_array_equal(streamed.aerial, reference.aerial)
        np.testing.assert_array_equal(streamed.resist, reference.resist)

    def test_streaming_out_dir_through_executor(self, spec, tmp_path):
        layout = (np.random.default_rng(9).random((50, 66)) > 0.75).astype(float)
        out_dir = str(tmp_path / "streamed")
        with ShardedExecutor(num_workers=1, cache_dir=str(tmp_path)) as ex:
            result = ex.image_layout(spec, layout, guard_px=6,
                                     out_dir=out_dir)
        reference = spec.build(cache=KernelBankCache()).image_layout(
            layout, guard_px=6)
        assert isinstance(result.aerial, np.memmap)
        np.testing.assert_array_equal(np.asarray(result.aerial),
                                      reference.aerial)

    def test_streaming_survives_broken_pool_every_batch(self, spec, tmp_path,
                                                        monkeypatch):
        """Serial fallback + close() exercised *under the streaming path*:
        every batch's pool attempt fails, every batch must fall back."""
        layout = (np.random.default_rng(3).random((70, 90)) > 0.75).astype(float)
        reference = spec.build(cache=KernelBankCache()).image_layout(
            layout, guard_px=8)
        executor = ShardedExecutor(num_workers=2, cache_dir=str(tmp_path))

        def poisoned_pool():
            raise OSError("subprocesses forbidden")

        monkeypatch.setattr(executor, "_pool_handle", poisoned_pool)
        streamed = executor.image_layout(spec, layout, guard_px=8,
                                         streaming=True, batch_tiles=3)
        assert not executor.last_used_pool
        np.testing.assert_array_equal(streamed.aerial, reference.aerial)
        np.testing.assert_array_equal(streamed.resist, reference.resist)
        executor.close()

    def test_streaming_pool_dies_mid_stream(self, spec, tmp_path):
        """First streamed batch shards through the pool, then the pool dies:
        the remaining batches degrade to serial, output bit-identical."""
        layout = (np.random.default_rng(5).random((70, 90)) > 0.75).astype(float)
        reference = spec.build(cache=KernelBankCache()).image_layout(
            layout, guard_px=8)
        executor = ShardedExecutor(num_workers=2, cache_dir=str(tmp_path))
        executor._pool = _FlakyPool(healthy=2)  # one sharded batch succeeds
        streamed = executor.image_layout(spec, layout, guard_px=8,
                                         streaming=True, batch_tiles=4)
        np.testing.assert_array_equal(streamed.aerial, reference.aerial)
        executor.close()


class TestCacheWarmAcrossProcesses:
    """The sharded executor's enabling mechanism: banks persist across processes."""

    def test_fresh_process_loads_bank_without_recomputation(self, tmp_path):
        cache = KernelBankCache(cache_dir=str(tmp_path))
        bank = cache.get_kernels(CONFIG, AnnularSource(0.5, 0.8), Pupil())
        assert cache.stats.tcc_computes == 1
        assert cache.stats.decompositions == 1

        code = textwrap.dedent("""
            import json, sys
            from repro.engine import KernelBankCache
            from repro.optics import OpticsConfig
            from repro.optics.pupil import Pupil
            from repro.optics.source import AnnularSource

            cache = KernelBankCache(cache_dir=sys.argv[1])
            config = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0,
                                  max_socs_order=8)
            bank = cache.get_kernels(config, AnnularSource(0.5, 0.8), Pupil())
            print(json.dumps({
                "tcc_computes": cache.stats.tcc_computes,
                "decompositions": cache.stats.decompositions,
                "disk_loads": cache.stats.disk_loads,
                "order": int(bank.kernels.shape[0]),
            }))
        """)
        src_dir = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "src"))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", code, str(tmp_path)],
            capture_output=True, text=True, env=env, check=True)
        stats = json.loads(completed.stdout.strip().splitlines()[-1])
        assert stats["tcc_computes"] == 0, "fresh process recomputed the TCC"
        assert stats["decompositions"] == 0, "fresh process re-eigendecomposed"
        assert stats["disk_loads"] == 1
        assert stats["order"] == bank.kernels.shape[0]
