"""Tests for the CMLP and RealMLP heads (repro.core.cmlp)."""

import numpy as np
import pytest

from repro import nn
from repro.core.cmlp import CMLP, RealMLP
from repro.core.encoding import RandomFourierEncoding, kernel_coordinates
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestCMLPStructure:
    def test_output_shape(self):
        model = CMLP(input_dim=8, hidden_dim=16, num_hidden_blocks=2, num_kernels=5)
        out = model(Tensor(np.zeros((10, 8), dtype=complex)))
        assert out.shape == (10, 5)
        assert out.dtype == np.complex128

    def test_architecture_matches_equation_12(self):
        """CLinear -> (CLinear -> CReLU) x N -> CLinear."""
        model = CMLP(input_dim=4, hidden_dim=8, num_hidden_blocks=3, num_kernels=2)
        modules = list(model.network)
        assert len(modules) == 1 + 2 * 3 + 1
        assert isinstance(modules[0], nn.CLinear)
        assert isinstance(modules[1], nn.CLinear)
        assert isinstance(modules[2], nn.CReLU)
        assert isinstance(modules[-1], nn.CLinear)

    def test_zero_hidden_blocks_allowed(self):
        model = CMLP(input_dim=4, hidden_dim=8, num_hidden_blocks=0, num_kernels=2)
        assert model(Tensor(np.zeros((3, 4), dtype=complex))).shape == (3, 2)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            CMLP(input_dim=0, num_kernels=2)
        with pytest.raises(ValueError):
            CMLP(input_dim=4, num_kernels=2, num_hidden_blocks=-1)

    def test_all_parameters_complex(self):
        model = CMLP(input_dim=4, hidden_dim=8, num_hidden_blocks=1, num_kernels=2)
        assert all(param.is_complex for param in model.parameters())

    def test_predict_kernels_shape(self):
        shape = (5, 7)
        encoding = RandomFourierEncoding(num_features=6, seed=0)
        features = Tensor(encoding(kernel_coordinates(shape)))
        model = CMLP(input_dim=encoding.output_dim, hidden_dim=8, num_hidden_blocks=1, num_kernels=3)
        kernels = model.predict_kernels(features, shape)
        assert kernels.shape == (3, 5, 7)

    def test_predict_kernels_validates_coordinate_count(self):
        model = CMLP(input_dim=4, hidden_dim=8, num_hidden_blocks=1, num_kernels=3)
        with pytest.raises(ValueError):
            model.predict_kernels(Tensor(np.zeros((10, 4), dtype=complex)), (5, 7))

    def test_seed_reproducibility(self):
        a = CMLP(input_dim=4, hidden_dim=8, num_hidden_blocks=1, num_kernels=2, seed=11)
        b = CMLP(input_dim=4, hidden_dim=8, num_hidden_blocks=1, num_kernels=2, seed=11)
        np.testing.assert_allclose(a.state_dict()["network.0.weight"],
                                   b.state_dict()["network.0.weight"])


class TestRealMLP:
    def test_output_is_complex_kernels(self):
        shape = (3, 3)
        model = RealMLP(input_dim=4, hidden_dim=8, num_hidden_blocks=1, num_kernels=2)
        kernels = model.predict_kernels(Tensor(np.zeros((9, 4))), shape)
        assert kernels.shape == (2, 3, 3)
        assert kernels.dtype == np.complex128

    def test_all_parameters_real(self):
        model = RealMLP(input_dim=4, hidden_dim=8, num_hidden_blocks=1, num_kernels=2)
        assert all(not param.is_complex for param in model.parameters())


class TestCMLPLearning:
    def test_cmlp_fits_a_small_complex_field(self):
        """The CMLP can regress a smooth complex-valued function of coordinates."""
        rng = np.random.default_rng(0)
        shape = (7, 7)
        coords = kernel_coordinates(shape)
        encoding = RandomFourierEncoding(num_features=16, sigma=2.0, seed=0)
        features = Tensor(encoding(coords))
        # target: one smooth complex "kernel" over the window
        target_field = np.exp(-((coords[:, 0] - 0.5) ** 2 + (coords[:, 1] - 0.5) ** 2) * 8.0)
        target = Tensor((target_field * (1 + 0.5j))[:, None])

        model = CMLP(input_dim=encoding.output_dim, hidden_dim=24, num_hidden_blocks=1,
                     num_kernels=1, seed=0)
        optimizer = nn.Adam(model.parameters(), lr=1e-2)
        losses = []
        for _ in range(200):
            prediction = model(features)
            loss = F.sum(F.abs2(F.sub(prediction, target)))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(float(loss.item()))
        assert losses[-1] < 0.05 * losses[0]
