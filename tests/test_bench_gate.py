"""Tests for the CI perf-regression gate (benchmarks/compare_trajectory.py).

The checker is a standalone script (benchmarks/ is not a package), so it is
loaded by file path.  Pinned behaviour:

* gated metrics are the self-normalised ratios (``speedup`` /
  ``peak_memory_ratio``): a >25 % drop fails, anything else passes,
* absolute seconds / throughput are reported but gated only under
  ``--absolute`` (CI runners are not comparable hardware),
* configuration-like numerics (cpus, shapes, counts) are ignored entirely,
* files present on only one side produce notes, never failures.
"""

import importlib.util
import json
import os
import sys

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_trajectory",
    os.path.join(os.path.dirname(__file__), "..", "benchmarks",
                 "compare_trajectory.py"))
gate = importlib.util.module_from_spec(_SPEC)
# dataclasses resolves the defining module through sys.modules at class
# creation time, so the by-path load must be registered first.
sys.modules["compare_trajectory"] = gate
_SPEC.loader.exec_module(gate)


def _write(directory, name, payload):
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, name), "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


@pytest.fixture()
def dirs(tmp_path):
    return str(tmp_path / "baseline"), str(tmp_path / "current")


class TestClassification:
    def test_speedup_keys_are_gated_higher_better(self):
        assert gate._classify("speedup", absolute=False) == (True, True, 1.0)
        assert gate._classify("sharded_speedup", absolute=False) == \
            (True, True, 1.0)
        assert gate._classify("peak_memory_ratio", absolute=False) == \
            (True, True, gate.MEMORY_SLACK)

    def test_absolute_keys_gated_only_with_flag(self):
        assert gate._classify("seconds", absolute=False) == (False, False, 1.0)
        assert gate._classify("serial_seconds", absolute=True) == \
            (False, True, 1.0)
        assert gate._classify("um2_per_second", absolute=False) == \
            (True, False, 1.0)
        assert gate._classify("um2_per_second", absolute=True) == \
            (True, True, 1.0)

    def test_configuration_keys_ignored(self):
        for key in ("cpus", "num_workers", "shape", "peak_bytes"):
            assert gate._classify(key, absolute=True) is None

    def test_transfers_per_chunk_gated_lower_better(self):
        assert gate._classify("transfers_per_chunk", absolute=False) == \
            (False, True, 1.0)

    def test_transfer_count_growth_fails_the_gate(self, dirs):
        """A host detour raising transfers/chunk 2.0 -> 3.0 is a regression."""
        baseline_dir, current_dir = dirs
        _write(baseline_dir, "t.json", {"transfers_per_chunk": 2.0})
        _write(current_dir, "t.json", {"transfers_per_chunk": 3.0})
        comparisons, _ = gate.compare_directories(baseline_dir, current_dir)
        report, code = gate.format_report(comparisons, [], 0.25)
        assert code == 1
        assert "FAIL" in report
        # Fewer transfers (impossible, but the better direction) passes.
        _write(current_dir, "t.json", {"transfers_per_chunk": 2.0})
        comparisons, _ = gate.compare_directories(baseline_dir, current_dir)
        _, code = gate.format_report(comparisons, [], 0.25)
        assert code == 0

    def test_memory_ratio_gets_double_slack(self, dirs):
        """A 40% peak_memory_ratio drop passes (allocator noise); 60% fails."""
        baseline_dir, current_dir = dirs
        _write(baseline_dir, "m.json", {"peak_memory_ratio": 10.0})
        _write(current_dir, "m.json", {"peak_memory_ratio": 6.0})
        comparisons, _ = gate.compare_directories(baseline_dir, current_dir)
        _, code = gate.format_report(comparisons, [], 0.25)
        assert code == 0
        _write(current_dir, "m.json", {"peak_memory_ratio": 4.0})
        comparisons, _ = gate.compare_directories(baseline_dir, current_dir)
        _, code = gate.format_report(comparisons, [], 0.25)
        assert code == 1


class TestDirectoryComparison:
    def test_pass_when_unchanged(self, dirs):
        baseline_dir, current_dir = dirs
        payload = {"speedup": 2.0, "seconds": 0.5, "cpus": 1}
        _write(baseline_dir, "a.json", payload)
        _write(current_dir, "a.json", payload)
        comparisons, notes = gate.compare_directories(baseline_dir, current_dir)
        report, code = gate.format_report(comparisons, notes, 0.25)
        assert code == 0
        assert "FAIL" not in report

    def test_fail_on_large_speedup_regression(self, dirs):
        baseline_dir, current_dir = dirs
        _write(baseline_dir, "a.json", {"speedup": 2.0})
        _write(current_dir, "a.json", {"speedup": 1.4})  # 0.70x < 0.75x
        comparisons, _ = gate.compare_directories(baseline_dir, current_dir)
        report, code = gate.format_report(comparisons, [], 0.25)
        assert code == 1
        assert "FAIL" in report

    def test_small_regression_within_tolerance_passes(self, dirs):
        baseline_dir, current_dir = dirs
        _write(baseline_dir, "a.json", {"speedup": 2.0})
        _write(current_dir, "a.json", {"speedup": 1.6})  # 0.80x >= 0.75x
        comparisons, _ = gate.compare_directories(baseline_dir, current_dir)
        _, code = gate.format_report(comparisons, [], 0.25)
        assert code == 0

    def test_nested_records_and_lists_are_walked(self, dirs):
        baseline_dir, current_dir = dirs
        _write(baseline_dir, "m.json",
               {"records": [{"speedup": 3.0}, {"speedup": 2.0}]})
        _write(current_dir, "m.json",
               {"records": [{"speedup": 3.1}, {"speedup": 1.0}]})
        comparisons, _ = gate.compare_directories(baseline_dir, current_dir)
        _, code = gate.format_report(comparisons, [], 0.25)
        assert code == 1
        assert len(comparisons) == 2

    def test_seconds_regression_ignored_without_absolute(self, dirs):
        baseline_dir, current_dir = dirs
        _write(baseline_dir, "a.json", {"serial_seconds": 1.0})
        _write(current_dir, "a.json", {"serial_seconds": 10.0})
        comparisons, _ = gate.compare_directories(baseline_dir, current_dir)
        _, code = gate.format_report(comparisons, [], 0.25)
        assert code == 0
        comparisons, _ = gate.compare_directories(baseline_dir, current_dir,
                                                  absolute=True)
        _, code = gate.format_report(comparisons, [], 0.25)
        assert code == 1

    def test_one_sided_files_are_notes_not_failures(self, dirs):
        baseline_dir, current_dir = dirs
        _write(baseline_dir, "old.json", {"speedup": 2.0})
        _write(current_dir, "new.json", {"speedup": 2.0})
        comparisons, notes = gate.compare_directories(baseline_dir, current_dir)
        assert comparisons == []
        assert len(notes) == 2
        _, code = gate.format_report(comparisons, notes, 0.25)
        assert code == 0

    def test_main_entry_point(self, dirs, tmp_path, capsys):
        baseline_dir, current_dir = dirs
        _write(baseline_dir, "a.json", {"speedup": 2.0})
        _write(current_dir, "a.json", {"speedup": 0.5})
        report_path = str(tmp_path / "report.txt")
        code = gate.main(["--baseline", baseline_dir, "--current", current_dir,
                          "--report", report_path])
        assert code == 1
        assert os.path.exists(report_path)
        assert "FAIL" in capsys.readouterr().out

    def test_repo_results_compare_clean_against_themselves(self):
        results = os.path.join(os.path.dirname(__file__), "..", "benchmarks",
                               "results")
        comparisons, notes = gate.compare_directories(results, results)
        report, code = gate.format_report(comparisons, notes, 0.25)
        assert code == 0
        assert comparisons, "committed results should expose gated metrics"
