"""Tests for the LithographySimulator facade and its presets."""

import numpy as np
import pytest

from repro.optics import (
    AnnularSource,
    OpticsConfig,
    calibre_like_engine,
    lithosim_engine,
)


class TestOpticsConfig:
    def test_defaults_match_paper(self):
        config = OpticsConfig()
        assert config.wavelength_nm == 193.0
        assert config.numerical_aperture == 1.35

    def test_field_size(self):
        config = OpticsConfig(tile_size_px=128, pixel_size_nm=8.0)
        assert config.field_size_nm == 1024.0

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            OpticsConfig(wavelength_nm=-1.0)
        with pytest.raises(ValueError):
            OpticsConfig(tile_size_px=0)

    def test_with_tile_size(self):
        config = OpticsConfig(tile_size_px=64).with_tile_size(128)
        assert config.tile_size_px == 128
        assert config.wavelength_nm == 193.0


class TestSimulator:
    def test_kernel_shape_follows_resolution_limit(self, tiny_simulator, tiny_optics):
        from repro.core.kernel_dims import kernel_dimensions

        expected = kernel_dimensions(tiny_optics.tile_size_px, tiny_optics.tile_size_px,
                                     pixel_size_nm=tiny_optics.pixel_size_nm)
        assert tiny_simulator.kernel_shape == expected

    def test_kernels_are_cached(self, tiny_simulator):
        assert tiny_simulator.kernels is tiny_simulator.kernels

    def test_aerial_output_shape_and_range(self, tiny_simulator, tiny_masks):
        aerial = tiny_simulator.aerial(tiny_masks[0])
        assert aerial.shape == tiny_masks[0].shape
        assert aerial.min() >= -1e-12
        assert aerial.max() < 1.5

    def test_aerial_rejects_wrong_tile_size(self, tiny_simulator):
        with pytest.raises(ValueError):
            tiny_simulator.aerial(np.zeros((8, 8)))

    def test_aerial_rejects_non_2d(self, tiny_simulator, tiny_masks):
        with pytest.raises(ValueError):
            tiny_simulator.aerial(tiny_masks)

    def test_resist_is_binary(self, tiny_simulator, tiny_masks):
        resist = tiny_simulator.resist(tiny_masks[0])
        assert set(np.unique(resist)).issubset({0, 1})

    def test_simulate_returns_all_stages(self, tiny_simulator, tiny_masks):
        result = tiny_simulator.simulate(tiny_masks[0])
        assert set(result) == {"mask", "aerial", "resist"}
        assert result["aerial"].shape == tiny_masks[0].shape

    def test_socs_close_to_rigorous(self, tiny_simulator, tiny_masks):
        socs = tiny_simulator.aerial(tiny_masks[0])
        rigorous = tiny_simulator.aerial_rigorous(tiny_masks[0])
        assert np.max(np.abs(socs - rigorous)) / max(rigorous.max(), 1e-9) < 0.02

    def test_resist_covers_mask_features_roughly(self, tiny_simulator, tiny_masks):
        """Printed area should be the same order of magnitude as the drawn area."""
        mask = tiny_masks[0]
        resist = tiny_simulator.resist(mask)
        drawn = mask.sum()
        printed = resist.sum()
        assert printed > 0.2 * drawn
        assert printed < 5.0 * drawn


class TestPresets:
    def test_lithosim_engine_configuration(self):
        engine = lithosim_engine(tile_size_px=32, pixel_size_nm=16.0)
        assert engine.config.tile_size_px == 32
        assert engine.config.resist_threshold == pytest.approx(0.225)

    def test_calibre_engine_uses_annular_source(self):
        engine = calibre_like_engine(tile_size_px=32, pixel_size_nm=16.0)
        assert isinstance(engine.source, AnnularSource)

    def test_presets_give_different_images(self, tiny_masks):
        mask = tiny_masks[0][:32, :32]
        a = lithosim_engine(32, 16.0).aerial(mask)
        b = calibre_like_engine(32, 16.0).aerial(mask)
        assert not np.allclose(a, b)

    def test_defocus_changes_calibre_image(self, tiny_masks):
        mask = tiny_masks[0][:32, :32]
        focused = calibre_like_engine(32, 16.0).aerial(mask)
        defocused = calibre_like_engine(32, 16.0, defocus_nm=120.0).aerial(mask)
        assert not np.allclose(focused, defocused)
