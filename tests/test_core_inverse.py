"""Tests for gradient-based inverse lithography on the kernel bank (repro.core.inverse)."""

import numpy as np
import pytest

from repro.core.inverse import GradientILT, ILTSettings, print_fidelity


@pytest.fixture(scope="module")
def golden_kernels(tiny_simulator):
    return tiny_simulator.kernels.kernels


@pytest.fixture(scope="module")
def simple_target(tiny_simulator):
    size = tiny_simulator.config.tile_size_px
    target = np.zeros((size, size))
    target[size // 4: 3 * size // 4, size // 2 - 4: size // 2 + 4] = 1.0
    return target


class TestSettingsValidation:
    def test_invalid_settings(self):
        with pytest.raises(ValueError):
            ILTSettings(iterations=0)
        with pytest.raises(ValueError):
            ILTSettings(learning_rate=0.0)
        with pytest.raises(ValueError):
            ILTSettings(resist_threshold=0.0)
        with pytest.raises(ValueError):
            ILTSettings(resist_steepness=-1.0)

    def test_kernel_shape_validation(self):
        with pytest.raises(ValueError):
            GradientILT(np.zeros((4, 4)))

    def test_target_shape_validation(self, golden_kernels):
        ilt = GradientILT(golden_kernels, ILTSettings(iterations=1))
        with pytest.raises(ValueError):
            ilt.optimise(np.zeros((2, 4, 4)))


class TestOptimisation:
    @pytest.fixture(scope="class")
    def result(self, golden_kernels, simple_target, tiny_simulator):
        settings = ILTSettings(iterations=60, learning_rate=0.4,
                               resist_threshold=tiny_simulator.config.resist_threshold)
        return GradientILT(golden_kernels, settings).optimise(simple_target)

    def test_output_structure(self, result, simple_target):
        assert set(result) >= {"mask", "binary_mask", "aerial", "resist", "history"}
        assert result["mask"].shape == simple_target.shape
        assert set(np.unique(result["binary_mask"])).issubset({0.0, 1.0})
        assert set(np.unique(result["resist"])).issubset({0, 1})

    def test_mask_stays_in_unit_interval(self, result):
        assert result["mask"].min() >= 0.0
        assert result["mask"].max() <= 1.0

    def test_fidelity_loss_decreases(self, result):
        history = result["history"]
        assert history[-1] < history[0]

    def test_ilt_improves_print_fidelity_over_uncorrected_mask(self, result, simple_target,
                                                               tiny_simulator):
        uncorrected = tiny_simulator.resist(simple_target)
        baseline = print_fidelity(uncorrected, simple_target)
        optimised = print_fidelity(result["resist"], simple_target)
        assert optimised >= baseline - 1e-9

    def test_learned_kernels_usable_for_ilt(self, trained_tiny_nitho, simple_target,
                                            tiny_simulator):
        """The advertised use case: run ILT on the kernels exported from Nitho."""
        settings = ILTSettings(iterations=30, learning_rate=0.4,
                               resist_threshold=tiny_simulator.config.resist_threshold)
        result = GradientILT(trained_tiny_nitho.export_kernels(), settings).optimise(simple_target)
        assert result["history"][-1] < result["history"][0]
        # Verify the optimised mask against the *golden* simulator, not the learned one.
        printed = tiny_simulator.resist(result["binary_mask"])
        assert print_fidelity(printed, simple_target) > 60.0
