"""The unified ComputeConfig policy object and its deprecation shim.

Pins the API-redesign contract: one serialisable object carries every
compute-policy knob through the engine, executor, sweep and CLI layers;
legacy loose kwargs keep working behind a DeprecationWarning; migrated and
legacy spellings produce bit-for-bit identical engines and equal specs.
"""

import json
import warnings

import numpy as np
import pytest

from repro.backend import ComputeConfig, apply_legacy_kwargs
from repro.cli import _compute_from_args, build_parser
from repro.engine import EngineSpec, ExecutionEngine, ShardedExecutor
from repro.optics.simulator import OpticsConfig

OPTICS = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)


def make_masks(count: int = 2) -> np.ndarray:
    rng = np.random.default_rng(5)
    return (rng.random((count, 32, 32)) > 0.6).astype(float)


class TestComputeConfig:
    def test_json_round_trip(self):
        config = ComputeConfig(fft_backend="numpy", fft_workers=2,
                               precision="float32", tile_cache=True,
                               scheduler="pool")
        assert ComputeConfig.from_json(config.to_json()) == config
        assert ComputeConfig.from_json(config.as_dict()) == config
        # drop_none keeps the round trip: missing keys stay None
        sparse = ComputeConfig(precision="float64")
        assert ComputeConfig.from_json(sparse.to_json(drop_none=True)) == sparse

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="fft_backnd"):
            ComputeConfig.from_dict({"fft_backnd": "numpy"})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError, match="object"):
            ComputeConfig.from_json(json.dumps(["numpy"]))

    def test_validates_field_types(self):
        with pytest.raises(ValueError):
            ComputeConfig(fft_workers=0)
        with pytest.raises(TypeError):
            ComputeConfig(fft_workers=True)
        with pytest.raises(TypeError, match="instances directly"):
            ComputeConfig(tile_cache="yes")
        with pytest.raises(TypeError, match="instances directly"):
            ComputeConfig(precision=np.float32)

    def test_from_env_reads_the_legacy_variables(self, monkeypatch):
        for var in ("REPRO_FFT_BACKEND", "REPRO_FFT_WORKERS",
                    "REPRO_PRECISION", "REPRO_TILE_CACHE",
                    "REPRO_TILE_CACHE_DIR", "REPRO_SCHEDULER"):
            monkeypatch.delenv(var, raising=False)
        assert ComputeConfig.from_env() == ComputeConfig()
        monkeypatch.setenv("REPRO_FFT_BACKEND", "numpy")
        monkeypatch.setenv("REPRO_FFT_WORKERS", "3")
        monkeypatch.setenv("REPRO_PRECISION", "float32")
        monkeypatch.setenv("REPRO_TILE_CACHE", "off")
        monkeypatch.setenv("REPRO_SCHEDULER", "stealing")
        assert ComputeConfig.from_env() == ComputeConfig(
            fft_backend="numpy", fft_workers=3, precision="float32",
            tile_cache=False, scheduler="stealing")
        # REPRO_TILE_CACHE_DIR alone implies caching on
        monkeypatch.delenv("REPRO_TILE_CACHE")
        monkeypatch.setenv("REPRO_TILE_CACHE_DIR", "/tmp/somewhere")
        assert ComputeConfig.from_env().tile_cache is True

    def test_resolve_pins_concrete_names(self):
        resolved = ComputeConfig(fft_backend="numpy").resolve()
        assert resolved.fft_backend == "numpy"
        assert resolved.precision in ("float64", "float32")
        with pytest.raises(ValueError, match="registered schedulers"):
            ComputeConfig(scheduler="bogus").resolve()
        # every registered scheduler name resolves, including "service"
        for name in ("serial", "pool", "stealing", "service"):
            assert ComputeConfig(scheduler=name).resolve().scheduler == name


class TestLegacyShim:
    def test_legacy_kwargs_warn_and_override(self):
        with pytest.warns(DeprecationWarning, match="fft_backend"):
            merged = apply_legacy_kwargs(
                ComputeConfig(precision="float64"), "Caller",
                fft_backend="numpy", fft_workers=None, precision=None)
        assert merged == ComputeConfig(fft_backend="numpy",
                                       precision="float64")

    def test_no_legacy_kwargs_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            merged = apply_legacy_kwargs(None, "Caller", fft_backend=None)
        assert merged == ComputeConfig()

    def test_engine_legacy_kwargs_warn(self):
        bank = np.zeros((1, 9, 9), dtype=complex)
        bank[0, 4, 4] = 1.0
        with pytest.warns(DeprecationWarning, match="ExecutionEngine"):
            ExecutionEngine(bank, fft_backend="numpy")

    def test_engine_compute_kwarg_is_silent_and_equivalent(self):
        masks = make_masks()
        with pytest.warns(DeprecationWarning):
            legacy = ExecutionEngine.for_optics(
                OPTICS, fft_backend="numpy", precision="float32")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            unified = ExecutionEngine.for_optics(
                OPTICS, compute=ComputeConfig(fft_backend="numpy",
                                              precision="float32"))
        assert unified.backend.name == legacy.backend.name
        assert unified.precision.name == legacy.precision.name
        np.testing.assert_array_equal(unified.aerial_batch(masks),
                                      legacy.aerial_batch(masks))

    def test_engine_spec_equal_and_same_fingerprint_both_ways(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            via_compute = EngineSpec(
                config=OPTICS, compute=ComputeConfig(fft_backend="numpy",
                                                     precision="float32"))
        via_fields = EngineSpec(config=OPTICS, fft_backend="numpy",
                                precision="float32")
        assert via_compute == via_fields
        assert via_compute.fingerprint() == via_fields.fingerprint()
        # construction-time convenience only: nothing rides along
        assert via_compute.compute is None

    def test_sharded_executor_takes_policy_from_compute(self):
        executor = ShardedExecutor(
            num_workers=1,
            compute=ComputeConfig(tile_cache=True, scheduler="serial"))
        try:
            assert executor.scheduler == "serial"
            assert executor.tile_cache is not None
        finally:
            executor.close()
        # explicit arguments beat the config
        executor = ShardedExecutor(
            num_workers=1, tile_cache=False,
            compute=ComputeConfig(tile_cache=True))
        try:
            assert executor.tile_cache is None
        finally:
            executor.close()


class TestCliComputeConfig:
    def _args(self, extra):
        return build_parser().parse_args(
            ["image-layout", "--output", "x.npz"] + extra)

    def test_compute_config_flag_seeds_the_policy(self):
        arguments = self._args(["--compute-config",
                                '{"fft_backend": "numpy", '
                                '"precision": "float32"}'])
        compute = _compute_from_args(arguments)
        assert compute.fft_backend == "numpy"
        assert compute.precision == "float32"

    def test_explicit_flags_override_the_json(self):
        arguments = self._args(["--compute-config",
                                '{"fft_backend": "numpy", '
                                '"scheduler": "pool"}',
                                "--scheduler", "serial",
                                "--precision", "float64"])
        compute = _compute_from_args(arguments)
        assert compute == ComputeConfig(fft_backend="numpy",
                                        precision="float64",
                                        scheduler="serial")

    def test_compute_config_from_file(self, tmp_path):
        path = tmp_path / "compute.json"
        path.write_text(json.dumps({"precision": "float32"}))
        arguments = self._args(["--compute-config", f"@{path}"])
        assert _compute_from_args(arguments).precision == "float32"

    def test_bad_json_fails_loudly(self):
        arguments = self._args(["--compute-config", '{"precisio": "x"}'])
        with pytest.raises(ValueError, match="precisio"):
            _compute_from_args(arguments)
