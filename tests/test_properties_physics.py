"""Cross-module property-based tests on physical invariants of the imaging pipeline.

These tie the optics substrate and the Nitho core together: whatever random
(but valid) mask or kernel bank hypothesis generates, the physical invariants
of partially-coherent imaging must hold.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.kernel_dims import kernel_dimensions
from repro.core.socs_engine import KernelBankEngine
from repro.optics.aerial import aerial_from_kernels, mask_spectrum
from repro.optics.pupil import Pupil
from repro.optics.socs import decompose_tcc
from repro.optics.source import CircularSource
from repro.optics.tcc import compute_tcc

TILE = 32
PIXEL = 32.0
FIELD = TILE * PIXEL
KERNEL_SHAPE = kernel_dimensions(TILE, TILE, pixel_size_nm=PIXEL)


@pytest.fixture(scope="module")
def golden_kernels():
    tcc = compute_tcc(CircularSource(sigma=0.6), Pupil(), KERNEL_SHAPE,
                      field_size_nm=FIELD, wavelength_nm=193.0, numerical_aperture=1.35)
    return decompose_tcc(tcc, max_order=12).kernels


binary_masks = arrays(np.float64, (TILE, TILE), elements=st.sampled_from([0.0, 1.0]))


class TestImagingInvariants:
    @given(mask=binary_masks)
    @settings(max_examples=15, deadline=None)
    def test_intensity_is_non_negative(self, golden_kernels, mask):
        aerial = aerial_from_kernels(mask, golden_kernels)
        assert aerial.min() >= -1e-12

    @given(mask=binary_masks, scale=st.floats(0.1, 3.0))
    @settings(max_examples=15, deadline=None)
    def test_intensity_is_quadratic_in_mask_amplitude(self, golden_kernels, mask, scale):
        base = aerial_from_kernels(mask, golden_kernels)
        scaled = aerial_from_kernels(scale * mask, golden_kernels)
        np.testing.assert_allclose(scaled, scale ** 2 * base, rtol=1e-6, atol=1e-10)

    @given(mask=binary_masks, shift_rows=st.integers(-8, 8), shift_cols=st.integers(-8, 8))
    @settings(max_examples=15, deadline=None)
    def test_translation_covariance(self, golden_kernels, mask, shift_rows, shift_cols):
        base = aerial_from_kernels(mask, golden_kernels)
        shifted = aerial_from_kernels(np.roll(mask, (shift_rows, shift_cols), axis=(0, 1)),
                                      golden_kernels)
        np.testing.assert_allclose(shifted, np.roll(base, (shift_rows, shift_cols), axis=(0, 1)),
                                   atol=1e-9)

    @given(mask=binary_masks)
    @settings(max_examples=15, deadline=None)
    def test_intensity_bounded_by_clear_field(self, golden_kernels, mask):
        """No binary mask can image brighter than ~the clear field (within diffraction ringing)."""
        aerial = aerial_from_kernels(mask, golden_kernels)
        assert aerial.max() < 1.5

    @given(mask=binary_masks)
    @settings(max_examples=15, deadline=None)
    def test_real_mask_spectrum_is_hermitian(self, mask):
        spectrum = mask_spectrum(mask)
        flipped = np.conj(spectrum[::-1, ::-1])
        # For even sizes the Nyquist row/column has no mirror partner; compare the interior.
        np.testing.assert_allclose(spectrum[1:, 1:], np.roll(flipped, (1, 1), axis=(0, 1))[1:, 1:],
                                   atol=1e-9)

    @given(order=st.integers(1, 12))
    @settings(max_examples=10, deadline=None)
    def test_truncated_intensity_never_exceeds_full(self, golden_kernels, order):
        """Dropping (non-negative) coherent terms can only lower the intensity."""
        rng = np.random.default_rng(0)
        mask = (rng.random((TILE, TILE)) > 0.8).astype(float)
        full_engine = KernelBankEngine(golden_kernels)
        truncated = full_engine.truncate(order)
        assert np.all(truncated.aerial(mask) <= full_engine.aerial(mask) + 1e-9)


class TestRobustness:
    def test_kernel_bank_accepts_real_valued_kernels(self, golden_kernels):
        engine = KernelBankEngine(np.abs(golden_kernels))
        assert engine.kernels.dtype == np.complex128

    def test_aerial_with_single_kernel(self, golden_kernels):
        aerial = aerial_from_kernels(np.ones((TILE, TILE)), golden_kernels[:1])
        assert aerial.shape == (TILE, TILE)

    def test_aerial_handles_non_binary_grayscale_masks(self, golden_kernels):
        rng = np.random.default_rng(1)
        grayscale = rng.random((TILE, TILE))
        aerial = aerial_from_kernels(grayscale, golden_kernels)
        assert np.all(np.isfinite(aerial))

    def test_nan_mask_propagates_to_nan_not_crash(self, golden_kernels):
        mask = np.ones((TILE, TILE))
        mask[0, 0] = np.nan
        aerial = aerial_from_kernels(mask, golden_kernels)
        assert np.isnan(aerial).any()
