"""Tests for the autograd Tensor container (repro.nn.tensor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, as_tensor, ones, tensor, unbroadcast, zeros


class TestConstruction:
    def test_real_data_is_float64(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float64
        assert t.shape == (3,)

    def test_complex_data_is_complex128(self):
        t = Tensor([1 + 2j, 3])
        assert t.dtype == np.complex128
        assert t.is_complex

    def test_scalar_construction(self):
        t = Tensor(3.5)
        assert t.size == 1
        assert t.item() == pytest.approx(3.5)

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_zeros_and_ones_helpers(self):
        assert np.all(zeros((2, 3)).data == 0)
        assert np.all(ones((2, 3)).data == 1)
        assert zeros((2,)).shape == (2,)

    def test_tensor_factory(self):
        t = tensor([1.0, 2.0], requires_grad=True)
        assert t.requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_array(self):
        t = as_tensor(np.arange(3))
        assert isinstance(t, Tensor)
        assert not t.requires_grad

    def test_len_and_ndim(self):
        t = Tensor(np.zeros((4, 2)))
        assert len(t) == 4
        assert t.ndim == 2

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, t.data)


class TestBackwardDriver:
    def test_backward_on_non_scalar_raises(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2.0
        with pytest.raises(ValueError):
            out.backward()

    def test_backward_on_complex_scalar_raises(self):
        t = Tensor([1.0 + 1j], requires_grad=True)
        out = t.sum()
        with pytest.raises(ValueError):
            out.backward()

    def test_backward_accumulates_over_multiple_uses(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert x.grad == pytest.approx(7.0)

    def test_second_backward_accumulates(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2.0).backward()
        (x * 2.0).backward()
        assert x.grad == pytest.approx(4.0)

    def test_zero_grad_clears(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_tracking_without_requires_grad(self):
        x = Tensor([1.0, 2.0])
        y = x * 2.0
        assert y._backward is None
        assert not y.requires_grad

    def test_grad_of_real_tensor_stays_real(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        k = Tensor([1j, 2j])
        out = (x * k).abs2().sum()
        out.backward()
        assert not np.iscomplexobj(x.grad)

    def test_explicit_gradient_seed(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        y = x * 2.0
        y.backward(np.array([1.0, 0.0, 2.0]))
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 4.0])


class TestUnbroadcast:
    def test_identity_when_shapes_match(self):
        grad = np.ones((2, 3))
        np.testing.assert_array_equal(unbroadcast(grad, (2, 3)), grad)

    def test_sums_over_added_leading_axis(self):
        grad = np.ones((4, 2, 3))
        out = unbroadcast(grad, (2, 3))
        np.testing.assert_array_equal(out, np.full((2, 3), 4.0))

    def test_sums_over_size_one_axis(self):
        grad = np.ones((2, 3))
        out = unbroadcast(grad, (2, 1))
        np.testing.assert_array_equal(out, np.full((2, 1), 3.0))

    def test_scalar_target(self):
        grad = np.ones((2, 3))
        out = unbroadcast(grad, ())
        assert out == pytest.approx(6.0)

    @given(rows=st.integers(1, 4), cols=st.integers(1, 4), batch=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_total_mass_is_preserved(self, rows, cols, batch):
        grad = np.random.default_rng(0).normal(size=(batch, rows, cols))
        out = unbroadcast(grad, (rows, cols))
        assert out.shape == (rows, cols)
        assert np.sum(out) == pytest.approx(np.sum(grad))


class TestOperatorSugar:
    def test_add_radd(self):
        x = Tensor([1.0, 2.0])
        np.testing.assert_allclose((x + 1.0).data, [2.0, 3.0])
        np.testing.assert_allclose((1.0 + x).data, [2.0, 3.0])

    def test_sub_rsub(self):
        x = Tensor([1.0, 2.0])
        np.testing.assert_allclose((x - 1.0).data, [0.0, 1.0])
        np.testing.assert_allclose((1.0 - x).data, [0.0, -1.0])

    def test_mul_div(self):
        x = Tensor([2.0, 4.0])
        np.testing.assert_allclose((x * 2.0).data, [4.0, 8.0])
        np.testing.assert_allclose((x / 2.0).data, [1.0, 2.0])
        np.testing.assert_allclose((8.0 / x).data, [4.0, 2.0])

    def test_neg_and_pow(self):
        x = Tensor([2.0, 3.0])
        np.testing.assert_allclose((-x).data, [-2.0, -3.0])
        np.testing.assert_allclose((x ** 2).data, [4.0, 9.0])

    def test_matmul_operator(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_getitem(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        np.testing.assert_allclose(x[0].data, [0.0, 1.0, 2.0])

    def test_reshape_transpose_helpers(self):
        x = Tensor(np.arange(6, dtype=float))
        assert x.reshape(2, 3).shape == (2, 3)
        assert x.reshape((3, 2)).shape == (3, 2)
        assert x.reshape(2, 3).T.shape == (3, 2)

    def test_sum_mean_helpers(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert x.sum().item() == pytest.approx(15.0)
        assert x.mean().item() == pytest.approx(2.5)
        assert x.sum(axis=0).shape == (3,)

    def test_complex_helpers(self):
        z = Tensor([1 + 2j, 3 - 4j])
        np.testing.assert_allclose(z.real().data, [1.0, 3.0])
        np.testing.assert_allclose(z.imag().data, [2.0, -4.0])
        np.testing.assert_allclose(z.conj().data, [1 - 2j, 3 + 4j])
        np.testing.assert_allclose(z.abs().data, [np.sqrt(5), 5.0])
        np.testing.assert_allclose(z.abs2().data, [5.0, 25.0])
