"""Tests for the command-line interface (repro.cli)."""

import json
import os

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.masks.io import load_dataset


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "b1.npz")
    exit_code = main(["generate", "--dataset", "B1", "--preset", "tiny",
                      "--seed", "3", "--output", path])
    assert exit_code == 0
    return path


@pytest.fixture(scope="module")
def checkpoint_file(tmp_path_factory, dataset_file):
    path = str(tmp_path_factory.mktemp("cli") / "nitho.npz")
    exit_code = main(["train", "--preset", "tiny", "--seed", "3",
                      "--dataset-file", dataset_file, "--epochs", "3",
                      "--output", path])
    assert exit_code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])

    def test_preset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--output", "x.npz", "--preset", "huge"])


class TestGenerate:
    def test_creates_loadable_dataset(self, dataset_file):
        assert os.path.exists(dataset_file)
        dataset = load_dataset(dataset_file)
        assert dataset.name == "B1"
        assert dataset.num_train > 0
        assert dataset.num_test > 0


class TestTrainEvaluateSimulate:
    def test_checkpoint_created(self, checkpoint_file):
        assert os.path.exists(checkpoint_file)
        with np.load(checkpoint_file) as archive:
            assert len(archive.files) > 0

    def test_evaluate_writes_json_metrics(self, dataset_file, checkpoint_file, tmp_path, capsys):
        json_path = str(tmp_path / "metrics.json")
        exit_code = main(["evaluate", "--preset", "tiny", "--seed", "3",
                          "--dataset-file", dataset_file,
                          "--checkpoint", checkpoint_file,
                          "--json-output", json_path])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "aerial" in captured and "resist" in captured
        with open(json_path) as handle:
            metrics = json.load(handle)
        assert set(metrics) == {"aerial", "resist"}
        assert metrics["aerial"]["mse"] >= 0.0
        assert 0.0 <= metrics["resist"]["miou"] <= 100.0

    def test_simulate_with_checkpoint(self, dataset_file, checkpoint_file, capsys):
        exit_code = main(["simulate", "--preset", "tiny", "--seed", "3",
                          "--dataset-file", dataset_file,
                          "--checkpoint", checkpoint_file, "--tiles", "2"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "checkpoint vs golden" in captured

    def test_simulate_without_checkpoint(self, dataset_file, capsys):
        exit_code = main(["simulate", "--preset", "tiny", "--seed", "3",
                          "--dataset-file", dataset_file, "--tiles", "1"])
        assert exit_code == 0
        assert "golden self-consistency" in capsys.readouterr().out

    def test_train_rejects_test_only_dataset(self, tmp_path):
        opc_path = str(tmp_path / "b1opc.npz")
        assert main(["generate", "--dataset", "B1opc", "--preset", "tiny",
                     "--output", opc_path]) == 0
        exit_code = main(["train", "--preset", "tiny", "--dataset-file", opc_path,
                          "--epochs", "1", "--output", str(tmp_path / "ckpt.npz")])
        assert exit_code == 2
