"""Integration tests for the experiment drivers (tables and figures) at reduced scale.

These exercise the same code paths the benchmark harness uses, but with
heavily reduced budgets so the whole file stays fast.  A single module-scoped
context is shared so models are trained once.
"""

import pytest

from repro.experiments import (
    MODEL_NAMES,
    ExperimentConfig,
    ExperimentContext,
    evaluate_on_dataset,
    preset_from_environment,
)
from repro.experiments.ablations import (
    run_real_vs_complex_ablation,
    run_rff_sigma_ablation,
    run_socs_order_ablation,
)
from repro.experiments.fig2 import run_fig2a, run_fig2b
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6a, run_fig6b
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5

PRESET = "tiny"
SEED = 7

# Full table / figure drivers train models even at the tiny preset; let quick
# developer loops deselect them with `-m "not slow"`.
pytestmark = pytest.mark.slow


class TestExperimentConfig:
    def test_preset_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(preset="enormous")

    def test_budgets_exist_for_all_presets(self):
        for preset in ("tiny", "small", "default"):
            config = ExperimentConfig(preset=preset)
            assert config.budgets.nitho_epochs > 0
            assert config.tile_size_px > 0

    def test_nitho_config_overrides(self):
        config = ExperimentConfig(preset="tiny")
        nitho = config.nitho_config(num_kernels=5, epochs=3)
        assert nitho.num_kernels == 5
        assert nitho.epochs == 3

    def test_nitho_config_non_rff_encoding_drops_rff_kwargs(self):
        config = ExperimentConfig(preset="tiny")
        nitho = config.nitho_config(encoding="nerf")
        assert nitho.encoding == "nerf"
        assert nitho.encoding_kwargs == {}

    def test_preset_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_PRESET", raising=False)
        assert preset_from_environment("tiny") == "tiny"
        monkeypatch.setenv("REPRO_PRESET", "small")
        assert preset_from_environment() == "small"
        monkeypatch.setenv("REPRO_PRESET", "bogus")
        with pytest.raises(ValueError):
            preset_from_environment()


class TestExperimentContext:
    def test_dataset_caching(self):
        context = ExperimentContext(ExperimentConfig(preset=PRESET, seed=SEED))
        assert context.dataset("B1") is context.dataset("B1")

    def test_merged_dataset(self):
        context = ExperimentContext(ExperimentConfig(preset=PRESET, seed=SEED))
        merged = context.dataset("B2m+B2v")
        assert merged.num_train == context.dataset("B2m").num_train + context.dataset("B2v").num_train

    def test_make_model_families(self):
        context = ExperimentContext(ExperimentConfig(preset=PRESET, seed=SEED))
        for name in MODEL_NAMES:
            model = context.make_model(name)
            assert model.num_parameters() > 0
        with pytest.raises(ValueError):
            context.make_model("UNet")

    def test_trained_model_cached(self):
        context = ExperimentContext(ExperimentConfig(preset=PRESET, seed=SEED))
        context.config = ExperimentConfig(preset=PRESET, seed=SEED)
        first = context.trained_model("DOINN", "B1")
        second = context.trained_model("DOINN", "B1")
        assert first is second

    def test_clear_drops_caches(self):
        context = ExperimentContext(ExperimentConfig(preset=PRESET, seed=SEED))
        context.dataset("B1")
        context.clear()
        assert context._datasets == {}


class TestTableDrivers:
    def test_table1_shapes_and_ordering(self):
        result = run_table1(PRESET, SEED, paper_scale=True)
        paper = result["paper_scale"]
        assert paper["TEMPO"]["parameters"] > paper["DOINN"]["parameters"] > paper["Nitho"]["parameters"]
        assert paper["TEMPO"]["size_mb"] > 20
        assert paper["Nitho"]["size_mb"] < 1.0
        assert "Table I" in result["table"]

    def test_table2_rows(self):
        result = run_table2(PRESET, SEED)
        names = [row["dataset"] for row in result["rows"]]
        assert names == ["B1", "B1opc", "B2m", "B2v"]
        assert all(row["tile_px"] > 0 for row in result["rows"])

    def test_table3_single_bench_shape(self):
        result = run_table3(PRESET, SEED, benches=("B1",), max_eval_tiles=2)
        assert set(result["per_bench"]["B1"]) == set(MODEL_NAMES)
        nitho = result["per_bench"]["B1"]["Nitho"]
        doinn = result["per_bench"]["B1"]["DOINN"]
        assert nitho["mse"] < doinn["mse"]
        assert nitho["psnr"] > doinn["psnr"]
        assert result["ratios"]["DOINN"]["mse"] > 1.0

    def test_table4_ood_drop_shape(self):
        result = run_table4(PRESET, SEED, transfers=(("B1", "B1opc"),), max_eval_tiles=2)
        key = "B1->B1opc"
        assert set(result["results"][key]) == set(MODEL_NAMES)
        nitho_drop = result["drops"][key]["Nitho"]["miou"]
        doinn_drop = result["drops"][key]["DOINN"]["miou"]
        assert nitho_drop <= doinn_drop + 5.0  # Nitho must not degrade much more than DOINN
        assert result["results"][key]["Nitho"]["miou"] > result["results"][key]["TEMPO"]["miou"]

    def test_table5_encoding_ablation(self):
        variants = (("None", "none", {}), ("Ours (RFF)", "rff", {}))
        result = run_table5(PRESET, SEED, variants=variants, max_eval_tiles=2)
        assert result["results"]["Ours (RFF)"]["psnr"] > result["results"]["None"]["psnr"]

    def test_evaluate_on_dataset_validates(self):
        context = ExperimentContext(ExperimentConfig(preset=PRESET, seed=SEED))
        dataset = context.dataset("B1")
        model = context.trained_model("Nitho", "B1")
        metrics = evaluate_on_dataset(model, dataset, max_tiles=1)
        assert set(metrics) == {"mse", "me", "psnr", "mpa", "miou"}


class TestFigureDrivers:
    def test_fig2a_embedding(self):
        result = run_fig2a(PRESET, SEED, samples_per_dataset=4, iterations=60)
        assert result["embedding"].embedding.shape[1] == 2
        assert result["separation"] > 0

    def test_fig2b_panels(self):
        result = run_fig2b(PRESET, SEED, train_on="B1", test_on="B2v")
        assert set(MODEL_NAMES).issubset(result["panels"])
        assert "Mask" in result["ascii"]

    def test_fig4_panels(self, tmp_path):
        result = run_fig4(PRESET, SEED, datasets=("B1",), output_directory=str(tmp_path))
        panel = result["panels"]["B1"]
        assert "Our aerial" in panel["images"]
        assert len(panel["files"]) == len(panel["images"])

    def test_fig5_throughput_ordering(self):
        result = run_fig5(PRESET, SEED, tiles=1, repeats=1)
        speeds = result["um2_per_second"]
        assert speeds["Nitho"] > speeds["Ref (rigorous Abbe)"]
        assert result["nitho_vs_rigorous_speedup"] > 1.0
        assert "Nitho" in result["chart"]

    def test_fig6a_fractions(self):
        result = run_fig6a(PRESET, SEED, fractions=(0.5, 1.0), max_eval_tiles=2)
        assert len(result["psnr"]["Nitho"]) == 2
        # Nitho with half the data still beats TEMPO with all of it (paper claim, Fig. 6a).
        assert result["psnr"]["Nitho"][0] > result["psnr"]["TEMPO"][-1]

    def test_fig6b_kernel_sweep(self):
        result = run_fig6b(PRESET, SEED, kernel_sizes=None, max_eval_tiles=2)
        sizes = result["kernel_sizes"]
        psnr = result["psnr"]["B1"]
        assert len(sizes) == len(psnr)
        optimal_index = sizes.index(min(sizes, key=lambda s: abs(s - result["optimal_size"])))
        assert psnr[optimal_index] > psnr[0]  # the Eq. (10) size beats a much smaller window


class TestAblationDrivers:
    def test_socs_order_ablation_monotone(self):
        result = run_socs_order_ablation(PRESET, SEED, orders=(1, 4, 12), tiles=1)
        psnr = result["psnr_vs_full"]
        assert psnr[-1] >= psnr[0]

    def test_real_vs_complex(self):
        result = run_real_vs_complex_ablation(PRESET, SEED, max_eval_tiles=1)
        assert set(result["results"]) == {"complex CMLP", "real MLP"}

    def test_rff_sigma_sweep(self):
        result = run_rff_sigma_ablation(PRESET, SEED, sigmas=(2.0, 8.0), max_eval_tiles=1)
        assert len(result["psnr"]) == 2
