"""The campaign service: HTTP round trips, shared caches, kill/resume, chaos.

The acceptance properties of the service PR, each pinned directly:

* a campaign submitted over HTTP produces bit-for-bit the CD matrix of the
  same campaign run serially in-process,
* concurrent campaigns share the process-wide kernel-bank machinery — two
  campaigns over the same optics leave one set of bank files, not two,
* a server killed mid-campaign (SIGKILL, no cleanup) recomputes exactly the
  remainder on restart,
* ``REPRO_SCHEDULER_FAULTS`` chaos through the ServiceScheduler still ends
  in correct, complete results (the facade's serial recompute answers).
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro.api as api
from repro.backend import ComputeConfig
from repro.engine import ShardedExecutor
from repro.layout.sources import synthesize_layout_mask
from repro.optics.simulator import OpticsConfig
from repro.service import (
    CampaignManager,
    CampaignRequest,
    CampaignServer,
    ServiceClient,
    ServiceError,
)
from repro.sweep import FocusExposureGrid, ProcessWindowSweep, report_as_dict

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

FOCI = [-40.0, 0.0, 40.0]
DOSES = [0.95, 1.0, 1.05]
COMPUTE_JSON = {"fft_backend": "numpy", "precision": "float64"}


def make_request(seed: int = 0, **overrides) -> dict:
    request = {
        "layout": {"kind": "synthetic", "family": "B2m", "width_px": 64,
                   "height_px": 64, "seed": seed},
        "optics": {"tile_size_px": 64, "pixel_size_nm": 8.0},
        "grid": {"focus_nm": FOCI, "dose": DOSES},
        "compute": dict(COMPUTE_JSON),
        "tolerance": 0.2,
    }
    request.update(overrides)
    return request


@pytest.fixture()
def server(tmp_path):
    with CampaignServer(str(tmp_path / "svc"), campaign_workers=2) as svc:
        yield svc


class TestRequestValidation:
    def test_rejects_unknown_fields_and_missing_blocks(self):
        with pytest.raises(ValueError, match="unknown request field"):
            CampaignRequest.from_dict(make_request(bogus=1))
        with pytest.raises(ValueError, match="grid"):
            CampaignRequest.from_dict(
            {"layout": {"kind": "array", "data": [[1.0]]},
             "optics": {"tile_size_px": 32}})
        with pytest.raises(ValueError, match="layout.kind"):
            CampaignRequest.from_dict(
                make_request(layout={"kind": "hologram"}))

    def test_resolves_layouts_like_the_cli(self):
        parsed = CampaignRequest.from_dict(make_request(seed=3))
        layout = parsed.resolve_layout()
        expected = synthesize_layout_mask(64, 64, 64, 8.0, "B2m", 3)
        np.testing.assert_array_equal(layout, expected)


class TestHttpRoundTrip:
    def test_served_campaign_matches_serial_bit_for_bit(self, server,
                                                        tmp_path):
        client = ServiceClient(server.url)
        assert client.health()["status"] == "ok"
        job = client.submit(make_request())
        final = client.wait(job["id"])
        assert final["state"] == "completed", final["error"]
        assert final["computed_conditions"] == len(FOCI) * len(DOSES)
        served = client.report(job["id"], format="json")

        serial_store = str(tmp_path / "serial")
        api.sweep_window(synthesize_layout_mask(64, 64, 64, 8.0, "B2m", 0),
                         OpticsConfig(tile_size_px=64, pixel_size_nm=8.0),
                         focus_nm=FOCI, dose=DOSES, tolerance=0.2,
                         compute=ComputeConfig(**COMPUTE_JSON),
                         store=serial_store)
        serial = report_as_dict(api.open_campaign(serial_store))
        # bit-for-bit: the exact float CD values, not approximate equality
        assert served["cd_matrix"] == serial["cd_matrix"]
        assert served["window"] == serial["window"]

        html = client.report(job["id"], format="html")
        assert "<table" in html and "CD" in html
        text = client.report(job["id"], format="text")
        assert "focus" in text.lower()

    def test_status_listing_and_errors(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client.status("nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"layout": {"kind": "array"}})
        assert excinfo.value.status == 400
        job = client.submit(make_request())
        assert any(entry["id"] == job["id"] for entry in client.list())
        client.wait(job["id"])

    def test_cancel_settles_the_job(self, server):
        client = ServiceClient(server.url)
        job = client.submit(make_request())
        client.cancel(job["id"])
        final = client.wait(job["id"])
        assert final["state"] in ("cancelled", "completed")

    def test_thumbnails_served_for_stored_aerials(self, server):
        client = ServiceClient(server.url)
        job = client.submit(make_request(store_aerials=True))
        client.wait(job["id"])
        report = client.report(job["id"], format="json")
        assert report["aerials"]
        pgm = client.thumbnail(job["id"], report["aerials"][0])
        assert pgm.startswith(b"P5")


class TestSharedKernelCache:
    def test_concurrent_campaigns_share_bank_files(self, tmp_path):
        with CampaignServer(str(tmp_path / "svc"),
                            campaign_workers=2) as server:
            client = ServiceClient(server.url)
            # same optics, different layouts: the kernel banks must be
            # decomposed once per focus, not once per campaign
            first = client.submit(make_request(seed=0))
            second = client.submit(make_request(seed=9))
            assert client.wait(first["id"])["state"] == "completed"
            assert client.wait(second["id"])["state"] == "completed"
            banks = glob.glob(os.path.join(server.manager.kernel_cache_dir,
                                           "kernels-*.npz"))
            assert len(banks) == len(FOCI)
            stats = client.health()["queue"]
            assert stats["submitted"] > 0


class TestKillAndResume:
    def test_sigkilled_server_recomputes_exactly_the_remainder(self,
                                                               tmp_path):
        data_dir = str(tmp_path / "svc")
        total = len(FOCI) * len(DOSES)
        # Phase 1: a real server process, SIGKILLed mid-campaign.
        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.cli import main\n"
            "main(['serve', '--data-dir', {data!r}, '--port', '0',\n"
            "      '--queue-workers', '2'])\n"
        ).format(src=SRC_DIR, data=data_dir)
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        proc = subprocess.Popen([sys.executable, "-c", script], env=env,
                                stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True)
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            url = next(tok for tok in banner.split()
                       if tok.startswith("http://"))
            client = ServiceClient(url)
            # a slower campaign (multi-tile layout) so the kill lands mid-run
            request = make_request(layout={"kind": "synthetic",
                                           "family": "B2m", "width_px": 96,
                                           "height_px": 96, "seed": 1},
                                   optics={"tile_size_px": 32,
                                           "pixel_size_nm": 8.0})
            job = client.submit(request)
            store_dir = os.path.join(data_dir, "campaigns", job["id"])
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if len(glob.glob(os.path.join(store_dir, "cond_*.npz"))) >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("campaign never stored a condition")
        finally:
            proc.kill()  # SIGKILL: no atexit, no manifest consolidation
            proc.wait(timeout=10)

        completed_before = len(glob.glob(os.path.join(store_dir,
                                                      "cond_*.npz")))
        assert 0 < completed_before  # the kill landed after >= 1 condition

        # Phase 2: restart over the same data dir; recovery must compute
        # exactly the remainder.
        with CampaignServer(data_dir, campaign_workers=1) as server:
            client = ServiceClient(server.url)
            final = client.wait(job["id"], timeout=240)
            assert final["state"] == "completed", final["error"]
            assert final["resumed"] is True
            if completed_before < total:
                assert final["computed_conditions"] == \
                    total - completed_before
                assert final["resumed_conditions"] == completed_before
            else:  # campaign finished before the kill: nothing recomputed
                assert final["computed_conditions"] == 0
            report = client.report(job["id"], format="json")
            assert report["progress"]["complete"] is True

    def test_manager_recovery_marks_finished_campaigns_completed(self,
                                                                 tmp_path):
        data_dir = str(tmp_path / "svc")
        manager = CampaignManager(data_dir, campaign_workers=1)
        try:
            job = manager.submit(make_request())
            manager.wait(job.id)
        finally:
            manager.close()
        revived = CampaignManager(data_dir, campaign_workers=1)
        try:
            recovered = revived.get(job.id)
            assert recovered is not None
            assert recovered.state == "completed"
            assert recovered.computed_conditions == 0  # nothing re-imaged
        finally:
            revived.close()


class TestChaosThroughServiceScheduler:
    def test_faults_still_end_in_serial_results(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER_FAULTS", "break_after=1")
        optics = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0)
        layout = synthesize_layout_mask(64, 64, 32, 8.0, "B2m", 2)
        grid = FocusExposureGrid.from_sequences(FOCI, DOSES)
        compute = ComputeConfig(fft_backend="numpy", precision="float64",
                                scheduler="service")
        with ShardedExecutor(num_workers=1, compute=compute) as executor:
            chaotic = ProcessWindowSweep(optics, executor=executor,
                                         compute=compute).run(
                layout, grid=grid, tolerance=0.2,
                store=str(tmp_path / "chaotic"))
        monkeypatch.delenv("REPRO_SCHEDULER_FAULTS")
        serial = api.sweep_window(layout, optics, grid=grid, tolerance=0.2,
                                  compute=ComputeConfig(fft_backend="numpy",
                                                        precision="float64"),
                                  store=str(tmp_path / "serial"))
        assert chaotic.window.cd_matrix() == serial.window.cd_matrix()
