"""Tests for geometry primitives and rasterisation (repro.masks.geometry)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.masks.geometry import Polygon, Rect, mask_density, rasterize


class TestRect:
    def test_basic_properties(self):
        rect = Rect(10, 20, 30, 40)
        assert rect.x2 == 40
        assert rect.y2 == 60
        assert rect.area == 1200
        assert rect.centre == (25, 40)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 5)
        with pytest.raises(ValueError):
            Rect(0, 0, 5, 0)

    def test_intersects(self):
        a = Rect(0, 0, 10, 10)
        assert a.intersects(Rect(5, 5, 10, 10))
        assert not a.intersects(Rect(20, 20, 5, 5))
        assert not a.intersects(Rect(10, 0, 5, 5))  # touching edges do not overlap

    def test_expanded_and_shrunk(self):
        rect = Rect(10, 10, 10, 10)
        grown = rect.expanded(5)
        assert (grown.x, grown.y, grown.width, grown.height) == (5, 5, 20, 20)
        with pytest.raises(ValueError):
            rect.expanded(-6)

    def test_translated(self):
        rect = Rect(0, 0, 4, 4).translated(3, -2)
        assert (rect.x, rect.y) == (3, -2)

    def test_clipped(self):
        rect = Rect(-5, -5, 20, 20).clipped(10)
        assert (rect.x, rect.y, rect.x2, rect.y2) == (0, 0, 10, 10)
        with pytest.raises(ValueError):
            Rect(20, 20, 5, 5).clipped(10)

    @given(x=st.floats(0, 100), y=st.floats(0, 100),
           w=st.floats(1, 50), h=st.floats(1, 50), margin=st.floats(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_expansion_grows_area(self, x, y, w, h, margin):
        rect = Rect(x, y, w, h)
        assert rect.expanded(margin).area >= rect.area


class TestPolygon:
    def test_requires_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon(((0, 0), (1, 1)))

    def test_bounding_box(self):
        poly = Polygon(((0, 0), (10, 0), (10, 20), (0, 20)))
        box = poly.bounding_box()
        assert (box.width, box.height) == (10, 20)

    def test_rectangle_decomposition_of_l_shape(self):
        # L-shape: 20x10 bar plus 10x20 bar sharing a corner.
        vertices = ((0, 0), (20, 0), (20, 10), (10, 10), (10, 20), (0, 20))
        rects = Polygon(vertices).to_rects()
        total_area = sum(r.area for r in rects)
        assert total_area == pytest.approx(20 * 10 + 10 * 10)

    def test_concave_u_shape_decomposition(self):
        # U-shape: 30-wide, 20-tall block with a 10x10 notch cut from the
        # top middle — concave, needs two spans in the middle slab.
        vertices = ((0, 0), (30, 0), (30, 20), (20, 20), (20, 10),
                    (10, 10), (10, 20), (0, 20))
        rects = Polygon(vertices).to_rects()
        assert sum(r.area for r in rects) == pytest.approx(30 * 20 - 10 * 10)
        # the notch interior stays empty: no rect covers its centre
        assert not any(r.x < 15 < r.x2 and r.y < 15 < r.y2 for r in rects)

    def test_t_shape_decomposition(self):
        vertices = ((0, 0), (30, 0), (30, 10), (20, 10), (20, 30),
                    (10, 30), (10, 10), (0, 10))
        rects = Polygon(vertices).to_rects()
        assert sum(r.area for r in rects) == pytest.approx(30 * 10 + 10 * 20)

    def test_degenerate_collinear_polygon_decomposes_to_nothing(self):
        # all vertices on one vertical line: zero-width slabs everywhere
        assert Polygon(((5, 0), (5, 10), (5, 20))).to_rects() == []
        # all vertices on one horizontal line: crossings collapse
        assert Polygon(((0, 5), (10, 5), (20, 5))).to_rects() == []

    def test_zero_area_span_is_skipped_not_raised(self):
        # A pinched bowtie-like ring whose middle slab has coincident
        # crossings: the zero-area span must be skipped, not crash Rect.
        vertices = ((0, 0), (10, 0), (10, 10), (20, 10), (20, 0),
                    (30, 0), (30, 10), (0, 10))
        rects = Polygon(vertices).to_rects()
        assert all(r.area > 0 for r in rects)
        assert sum(r.area for r in rects) == pytest.approx(10 * 10 + 10 * 10)

    def test_zero_height_notch_polygon(self):
        # A rectangle with a zero-height slit recorded in the outline:
        # degrades to the plain rectangle instead of raising.
        vertices = ((0, 0), (30, 0), (30, 10), (15, 10), (15, 10),
                    (0, 10))
        rects = Polygon(vertices).to_rects()
        assert sum(r.area for r in rects) == pytest.approx(30 * 10)

    def test_decomposition_matches_rasterisation(self):
        # The layout reader leans on to_rects: its rasterised union must
        # equal rasterising the same outline's area directly.
        vertices = ((0, 0), (40, 0), (40, 16), (16, 16), (16, 40), (0, 40))
        rects = Polygon(vertices).to_rects()
        mask = rasterize(rects, tile_size_px=10, pixel_size_nm=4.0)
        assert mask.sum() == pytest.approx((40 * 16 + 16 * 24) / 16.0)


class TestRasterize:
    def test_full_tile_rectangle(self):
        mask = rasterize([Rect(0, 0, 64, 64)], tile_size_px=8, pixel_size_nm=8.0)
        np.testing.assert_allclose(mask, 1.0)

    def test_half_tile(self):
        mask = rasterize([Rect(0, 0, 32, 64)], tile_size_px=8, pixel_size_nm=8.0)
        np.testing.assert_allclose(mask[:, :4], 1.0)
        np.testing.assert_allclose(mask[:, 4:], 0.0)

    def test_shape_outside_tile_is_ignored(self):
        mask = rasterize([Rect(1000, 1000, 10, 10)], tile_size_px=8, pixel_size_nm=8.0)
        np.testing.assert_allclose(mask, 0.0)

    def test_pixel_centre_sampling(self):
        """A rectangle covering less than half the first pixel leaves it dark."""
        mask = rasterize([Rect(0, 0, 3.0, 64)], tile_size_px=8, pixel_size_nm=8.0)
        assert mask[0, 0] == 0.0
        mask = rasterize([Rect(0, 0, 5.0, 64)], tile_size_px=8, pixel_size_nm=8.0)
        assert mask[0, 0] == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            rasterize([], tile_size_px=0, pixel_size_nm=1.0)
        with pytest.raises(ValueError):
            rasterize([], tile_size_px=8, pixel_size_nm=0.0)

    def test_empty_shape_list(self):
        mask = rasterize([], tile_size_px=8, pixel_size_nm=8.0)
        np.testing.assert_allclose(mask, 0.0)

    def test_mask_density(self):
        mask = np.zeros((10, 10))
        mask[:5] = 1.0
        assert mask_density(mask) == pytest.approx(0.5)
        assert mask_density(np.zeros((0, 0))) == 0.0

    @given(width=st.floats(8, 120), height=st.floats(8, 120))
    @settings(max_examples=30, deadline=None)
    def test_rasterised_area_tracks_geometric_area(self, width, height):
        pixel = 4.0
        mask = rasterize([Rect(16, 16, width, height)], tile_size_px=64, pixel_size_nm=pixel)
        geometric_pixels = (width / pixel) * (height / pixel)
        assert abs(mask.sum() - geometric_pixels) <= (width + height) / pixel + 4
