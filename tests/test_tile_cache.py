"""Tests for the content-addressed tile-result cache (repro.engine.tile_cache).

Pinned guarantees:

* deduplicated imaging is **bit-for-bit** the uncached result — across FFT
  backends (numpy / scipy), precisions (float64 / float32), serial and
  sharded execution, in-memory and streaming paths, including a hypothesis
  sweep over random layout geometries,
* a 2x2 instance array of one cell images exactly one unique tile; the
  other three are served from the cache (:class:`TileCacheStats` observable),
* all-zero tiles are served by the constant fast path without ever calling
  the imaging function,
* ``extract_tile_batch`` writes every row of its ``np.empty`` allocation
  (the satellite that dropped the ``np.zeros`` memset),
* ``window_is_empty`` agrees with ``read_window(...).any()`` on both bundled
  readers, including bucket-grid candidates that do not really intersect,
* the disk tier round-trips imaged tiles to a fresh cache instance, and the
  LRU tier evicts oldest-first under a byte budget, and
* a campaign store accumulates the sweep's cache counters and the rendered
  report shows them.
"""

import dataclasses
import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    ZERO_TILE_DIGEST,
    ExecutionEngine,
    ShardedExecutor,
    TileCacheContext,
    TileResultCache,
    TilingSpec,
    extract_tile_batch,
    plan_tiles,
    resolve_tile_cache,
    tile_digest,
)
from repro.engine import tile_cache as tile_cache_module
from repro.layout import ArrayLayoutReader, GeometryLayoutReader
from repro.masks.geometry import Rect
from repro.optics import OpticsConfig
from repro.optics.source import CircularSource

CONFIG = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, max_socs_order=8)
SOURCE = CircularSource(sigma=0.6)

CONTEXT = TileCacheContext(kernel_fingerprint="bank", backend="numpy",
                           precision="float64", tile_px=4, guard_px=0)


def counting(function):
    """Wrap an image_batch callable, recording every batch it was handed."""
    batches = []

    def wrapper(tiles):
        batches.append(np.array(tiles))
        return function(tiles)

    wrapper.batches = batches
    return wrapper


@functools.lru_cache(maxsize=None)
def engine_pair(backend, precision):
    """(uncached, cached) engines sharing optics; kernel banks come from the
    process-wide kernel cache, so each pair is built once per session."""
    build = functools.partial(ExecutionEngine.for_optics, CONFIG,
                              source=SOURCE, fft_backend=backend,
                              precision=precision)
    return build(tile_cache=False), build(tile_cache=TileResultCache())


class TestTileDigest:
    def test_content_addressing(self):
        tile = np.arange(16.0).reshape(4, 4)
        assert tile_digest(tile) == tile_digest(tile.copy())
        assert tile_digest(tile) != tile_digest(tile + 1)
        assert tile_digest(tile) != tile_digest(tile.astype(np.float32))
        assert tile_digest(tile) != tile_digest(tile.reshape(2, 8))
        assert tile_digest(tile) != ZERO_TILE_DIGEST

    def test_key_prefix_separates_policies(self):
        prefixes = {
            CONTEXT.key_prefix(),
            dataclasses.replace(CONTEXT, backend="scipy").key_prefix(),
            dataclasses.replace(CONTEXT, precision="float32").key_prefix(),
            dataclasses.replace(CONTEXT, guard_px=8).key_prefix(),
            dataclasses.replace(CONTEXT, kernel_fingerprint="x").key_prefix(),
        }
        assert len(prefixes) == 5


class TestExtractTileBatchDigests:
    LAYOUT = np.zeros((64, 64))
    LAYOUT[8:24, 8:24] = 1.0  # content only in the top-left tile

    def test_digest_mode_matches_plain_mode(self):
        spec = TilingSpec(tile_px=32, guard_px=8)
        placements = plan_tiles(*self.LAYOUT.shape, spec)
        plain = extract_tile_batch(self.LAYOUT, placements, spec)
        tiles, digests = extract_tile_batch(self.LAYOUT, placements, spec,
                                            with_digests=True)
        np.testing.assert_array_equal(tiles, plain)
        assert len(digests) == len(tiles)
        for tile, digest in zip(tiles, digests):
            if tile.any():
                assert digest == tile_digest(tile)
            else:
                assert digest == ZERO_TILE_DIGEST

    def test_every_row_is_written(self, monkeypatch):
        """Pin the np.zeros -> np.empty switch: poison the allocation with
        NaNs and require that extraction fully overwrites every row."""
        real_empty = np.empty

        def poisoned_empty(shape, dtype=float, **kwargs):
            out = real_empty(shape, dtype=dtype, **kwargs)
            if np.issubdtype(out.dtype, np.floating):
                out.fill(np.nan)
            return out

        monkeypatch.setattr(np, "empty", poisoned_empty)
        spec = TilingSpec(tile_px=32, guard_px=8)
        placements = plan_tiles(*self.LAYOUT.shape, spec)
        for with_digests in (False, True):
            result = extract_tile_batch(self.LAYOUT, placements, spec,
                                        with_digests=with_digests)
            tiles = result[0] if with_digests else result
            assert np.isfinite(tiles).all()

    def test_reader_empty_windows_skip_rasterising(self):
        """A reader advertising window_is_empty never gets read_window calls
        for windows its geometry proves empty."""
        reader = GeometryLayoutReader({"m1": [Rect(0, 0, 64, 64)]},
                                      pixel_size_nm=8.0, extent_nm=512.0)
        reads = []
        real_read = reader.read_window
        reader.read_window = lambda *args: (reads.append(args),
                                            real_read(*args))[1]
        spec = TilingSpec(tile_px=32, guard_px=0)
        placements = plan_tiles(*reader.shape, spec)
        tiles, digests = extract_tile_batch(reader, placements, spec,
                                            with_digests=True)
        assert digests.count(ZERO_TILE_DIGEST) == len(placements) - 1
        assert len(reads) == 1  # only the one non-empty tile was rasterised
        np.testing.assert_array_equal(
            tiles, extract_tile_batch(reader, placements, spec))


class TestWindowIsEmpty:
    def scan(self, reader):
        for row in range(-8, reader.shape[0] + 8, 5):
            for col in range(-8, reader.shape[1] + 8, 5):
                empty = reader.window_is_empty(row, col, 12, 12)
                assert empty == (not reader.read_window(row, col,
                                                        12, 12).any())

    def test_array_reader_agrees_with_read_window(self):
        layout = np.zeros((40, 56))
        layout[10:20, 30:44] = 1.0
        self.scan(ArrayLayoutReader(layout))

    def test_geometry_reader_agrees_with_read_window(self):
        reader = GeometryLayoutReader(
            {"m1": [Rect(64, 80, 80, 48)], "m2": [Rect(240, 8, 32, 96)]},
            pixel_size_nm=8.0, extent_nm=448.0)
        self.scan(reader)

    def test_geometry_candidate_must_really_intersect(self):
        """A shape sharing the query's bucket but not its extent is not a
        hit: the interval check, not the bucket grid, decides emptiness."""
        reader = GeometryLayoutReader({"m1": [Rect(0, 0, 16, 16)]},
                                      pixel_size_nm=8.0, extent_nm=1024.0,
                                      bucket_px=64)
        # Same bucket as the 2x2 px rect at the origin, no real overlap.
        assert reader.window_is_empty(10, 10, 20, 20)
        assert not reader.window_is_empty(0, 0, 20, 20)

    def test_validates_window_dims(self):
        for reader in (ArrayLayoutReader(np.zeros((8, 8))),
                       GeometryLayoutReader({"m1": [Rect(0, 0, 8, 8)]},
                                            pixel_size_nm=8.0,
                                            extent_nm=64.0)):
            with pytest.raises(ValueError):
                reader.window_is_empty(0, 0, 0, 4)
            with pytest.raises(ValueError):
                reader.window_is_empty(0, 0, 4, -1)


class TestTileResultCache:
    def batch(self):
        tile_a = np.full((4, 4), 2.0)
        tile_b = np.arange(16.0).reshape(4, 4)
        tiles = np.stack([tile_a, tile_b, tile_a, np.zeros((4, 4))])
        digests = [tile_digest(tile_a), tile_digest(tile_b),
                   tile_digest(tile_a), ZERO_TILE_DIGEST]
        return tiles, digests

    def test_images_unique_tiles_once_and_scatters(self):
        cache = TileResultCache()
        tiles, digests = self.batch()
        image = counting(lambda batch: batch * 3.0)
        out = cache.image_tile_batch(tiles, digests, image, CONTEXT)
        assert len(image.batches) == 1
        np.testing.assert_array_equal(image.batches[0], tiles[:2])
        np.testing.assert_array_equal(out[:3], tiles[:3] * 3.0)
        np.testing.assert_array_equal(out[3], 0.0)
        assert dataclasses.asdict(cache.stats) == {
            "tiles": 4, "hits": 1, "zero_hits": 1, "disk_loads": 0,
            "misses": 2, "evictions": 0}

    def test_second_batch_is_served_entirely_from_memory(self):
        cache = TileResultCache()
        tiles, digests = self.batch()
        first = cache.image_tile_batch(tiles, digests,
                                       lambda batch: batch * 3.0, CONTEXT)
        image = counting(lambda batch: batch * 3.0)
        second = cache.image_tile_batch(tiles, digests, image, CONTEXT)
        assert image.batches == []  # nothing imaged the second time
        np.testing.assert_array_equal(second, first)
        assert cache.stats.misses == 2 and cache.stats.served == 6

    def test_zero_fast_path_never_calls_image_batch(self):
        cache = TileResultCache()
        tiles = np.zeros((3, 4, 4))
        image = counting(lambda batch: batch)
        out = cache.image_tile_batch(tiles, [ZERO_TILE_DIGEST] * 3, image,
                                     CONTEXT)
        assert image.batches == []
        np.testing.assert_array_equal(out, 0.0)
        assert cache.stats.zero_hits == 3 and len(cache) == 0

    def test_output_dtype_follows_precision_not_input(self):
        cache = TileResultCache()
        tiles, digests = self.batch()
        context = dataclasses.replace(CONTEXT, precision="float32")
        out = cache.image_tile_batch(
            tiles, digests,
            lambda batch: (batch * 3.0).astype(np.float32), context)
        assert out.dtype == np.float32

    def test_lru_evicts_oldest_under_byte_budget(self):
        tile = np.zeros((4, 4))
        cache = TileResultCache(max_bytes=int(tile.nbytes * 1.5))
        for value in (1.0, 2.0, 3.0):
            cache.image_tile_batch(np.full((1, 4, 4), value),
                                   [tile_digest(np.full((4, 4), value))],
                                   lambda batch: batch, CONTEXT)
        assert len(cache) == 1 and cache.stats.evictions == 2
        # The newest entry survived; the oldest must be re-imaged.
        image = counting(lambda batch: batch)
        cache.image_tile_batch(np.full((1, 4, 4), 3.0),
                               [tile_digest(np.full((4, 4), 3.0))],
                               image, CONTEXT)
        assert image.batches == []
        cache.image_tile_batch(np.full((1, 4, 4), 1.0),
                               [tile_digest(np.full((4, 4), 1.0))],
                               image, CONTEXT)
        assert len(image.batches) == 1

    def test_disk_tier_round_trips_to_a_fresh_cache(self, tmp_path):
        tiles, digests = self.batch()
        warm = TileResultCache(cache_dir=str(tmp_path))
        expected = warm.image_tile_batch(tiles, digests,
                                         lambda batch: batch * 3.0, CONTEXT)
        cold = TileResultCache(cache_dir=str(tmp_path))
        image = counting(lambda batch: batch * 3.0)
        out = cold.image_tile_batch(tiles, digests, image, CONTEXT)
        assert image.batches == []  # every tile came from disk or the batch
        np.testing.assert_array_equal(out, expected)
        assert cold.stats.disk_loads == 2
        assert cold.stats.misses == 0

    def test_clear_keeps_disk(self, tmp_path):
        tiles, digests = self.batch()
        cache = TileResultCache(cache_dir=str(tmp_path))
        cache.image_tile_batch(tiles, digests, lambda batch: batch, CONTEXT)
        cache.clear()
        assert len(cache) == 0 and cache.stats.tiles == 0
        cache.image_tile_batch(tiles, digests, lambda batch: batch, CONTEXT)
        assert cache.stats.disk_loads == 2

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            TileResultCache(max_bytes=0)
        with pytest.raises(ValueError):
            TileResultCache().image_tile_batch(
                np.zeros((2, 4, 4)), ["only-one"], lambda batch: batch,
                CONTEXT)

    def test_resolve_tile_cache(self, monkeypatch):
        monkeypatch.setattr(tile_cache_module, "_default_cache", None)
        monkeypatch.delenv("REPRO_TILE_CACHE", raising=False)
        monkeypatch.delenv("REPRO_TILE_CACHE_DIR", raising=False)
        cache = TileResultCache()
        assert resolve_tile_cache(cache) is cache
        assert resolve_tile_cache(False) is None
        assert resolve_tile_cache(None) is None
        assert resolve_tile_cache(True) is tile_cache_module.default_tile_cache()
        with pytest.raises(TypeError):
            resolve_tile_cache("yes")
        monkeypatch.setenv("REPRO_TILE_CACHE", "1")
        assert resolve_tile_cache(None) is not None
        monkeypatch.setenv("REPRO_TILE_CACHE", "off")
        assert resolve_tile_cache(None) is None
        monkeypatch.delenv("REPRO_TILE_CACHE")
        monkeypatch.setenv("REPRO_TILE_CACHE_DIR", "/tmp/somewhere")
        monkeypatch.setattr(tile_cache_module, "_default_cache", None)
        resolved = resolve_tile_cache(None)
        assert resolved is not None
        assert resolved.cache_dir == "/tmp/somewhere"


class TestCachedImagingBitForBit:
    def test_instance_array_images_one_unique_tile(self):
        """2x2 array of one 32 px cell: 4 tiles, 1 imaged, 3 from cache."""
        rng = np.random.default_rng(7)
        cell = (rng.random((32, 32)) > 0.7).astype(float)
        layout = np.tile(cell, (2, 2))
        plain, cached = engine_pair("numpy", "float64")
        cache = cached.tile_cache
        cache.clear()
        reference = plain.image_layout(layout, tile_px=32, guard_px=0)
        result = cached.image_layout(layout, tile_px=32, guard_px=0)
        np.testing.assert_array_equal(result.aerial, reference.aerial)
        np.testing.assert_array_equal(result.resist, reference.resist)
        assert cache.stats.tiles == 4
        assert cache.stats.misses == 1
        assert cache.stats.hits == 3

    def test_all_zero_layout_is_never_imaged(self):
        _, cached = engine_pair("numpy", "float64")
        cache = cached.tile_cache
        cache.clear()
        result = cached.image_layout(np.zeros((64, 96)), tile_px=32,
                                     guard_px=0)
        np.testing.assert_array_equal(result.aerial, 0.0)
        assert cache.stats.zero_hits == result.num_tiles
        assert cache.stats.misses == 0

    @pytest.mark.parametrize("backend,precision", [
        ("numpy", "float64"),
        ("numpy", "float32"),
        ("scipy", "float64"),
        ("scipy", "float32"),
    ])
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), guard=st.sampled_from([0, 8]),
           height=st.integers(33, 70), width=st.integers(33, 96))
    def test_dedup_is_bit_for_bit(self, backend, precision, seed, guard,
                                  height, width):
        """Cached == uncached, bit for bit, across backends, precisions and
        the in-memory / streaming paths, on random repetitive layouts."""
        if backend == "scipy":
            pytest.importorskip("scipy.fft")
        rng = np.random.default_rng(seed)
        layout = np.zeros((height, width))
        for _ in range(int(rng.integers(0, 5))):
            row, col = rng.integers(0, height), rng.integers(0, width)
            layout[row:row + int(rng.integers(1, 20)),
                   col:col + int(rng.integers(1, 20))] = 1.0
        plain, cached = engine_pair(backend, precision)
        reference = plain.image_layout(layout, tile_px=32, guard_px=guard)
        dense = cached.image_layout(layout, tile_px=32, guard_px=guard)
        streamed = cached.image_layout(layout, tile_px=32, guard_px=guard,
                                       streaming=True, batch_tiles=3)
        np.testing.assert_array_equal(dense.aerial, reference.aerial)
        np.testing.assert_array_equal(dense.resist, reference.resist)
        np.testing.assert_array_equal(streamed.aerial, reference.aerial)
        np.testing.assert_array_equal(streamed.resist, reference.resist)

    @pytest.mark.parametrize("precision", ["float64", "float32"])
    @pytest.mark.parametrize("streaming", [False, True])
    def test_sharded_dedup_is_bit_for_bit(self, tmp_path, precision,
                                          streaming):
        """Parent-side dedup in ShardedExecutor matches the uncached sharded
        result exactly (which itself is pinned to match serial)."""
        from repro.engine import EngineSpec

        layout = np.zeros((80, 110))
        layout[10:70, 20:28] = 1.0
        layout[30:38, 40:100] = 1.0
        spec = EngineSpec(config=CONFIG, source=SOURCE, precision=precision)
        cache = TileResultCache()
        with ShardedExecutor(num_workers=2, cache_dir=str(tmp_path),
                             tile_cache=False) as executor:
            reference = executor.image_layout(spec, layout, guard_px=8,
                                              streaming=streaming)
        with ShardedExecutor(num_workers=2, cache_dir=str(tmp_path),
                             tile_cache=cache) as executor:
            result = executor.image_layout(spec, layout, guard_px=8,
                                           streaming=streaming)
        np.testing.assert_array_equal(result.aerial, reference.aerial)
        np.testing.assert_array_equal(result.resist, reference.resist)
        assert cache.stats.tiles == reference.num_tiles
        assert cache.stats.misses < cache.stats.tiles  # zero tiles dedup


class TestSweepIntegration:
    def test_store_accumulates_cache_counters_and_report_renders(
            self, tmp_path):
        from repro.sweep import (FocusExposureGrid, ProcessWindowSweep,
                                 load_campaign_report,
                                 render_campaign_report)

        layout = np.zeros((64, 64))
        layout[8:56, 28:36] = 1.0
        grid = FocusExposureGrid((0.0, 80.0), (1.0,))
        store_dir = str(tmp_path / "store")
        cache = TileResultCache()
        with ShardedExecutor(num_workers=1,
                             cache_dir=str(tmp_path / "banks"),
                             tile_cache=cache) as executor:
            sweep = ProcessWindowSweep(CONFIG, source=SOURCE,
                                       executor=executor)
            sweep.run(layout, grid=grid, tolerance=0.3, guard_px=8,
                      store=store_dir)
        stats = dataclasses.asdict(cache.stats)
        assert stats["tiles"] > 0
        from repro.sweep import CampaignStore

        stored = CampaignStore(store_dir).read_manifest()["tile_cache"]
        assert stored == {key: value for key, value in stats.items()}
        report = load_campaign_report(store_dir)
        rendered = render_campaign_report(report)
        assert "tile cache" in rendered
        assert f"{cache.stats.served}/{cache.stats.tiles} tiles" in rendered

    def test_cache_persists_across_foci(self, tmp_path):
        """One cache serves every focus; banks differ per focus so tiles are
        *namespaced* per kernel fingerprint, never served across foci."""
        from repro.sweep import FocusExposureGrid, ProcessWindowSweep

        rng = np.random.default_rng(3)
        cell = (rng.random((32, 32)) > 0.7).astype(float)
        layout = np.tile(cell, (2, 2))
        grid = FocusExposureGrid((0.0, 80.0), (0.9, 1.0, 1.1))
        cache = TileResultCache()
        with ShardedExecutor(num_workers=1,
                             cache_dir=str(tmp_path / "banks"),
                             tile_cache=cache) as executor:
            ProcessWindowSweep(CONFIG, source=SOURCE, executor=executor).run(
                layout, target_cd_nm=100.0, grid=grid, tolerance=0.3,
                guard_px=0)
        # One aerial per focus (doses rescale the threshold, not the
        # aerial), 4 tiles each, 1 unique cell per focus.
        assert cache.stats.tiles == 8
        assert cache.stats.misses == 2
        assert cache.stats.hits == 6


class TestCLI:
    def test_image_layout_warm_run_serves_everything(self, tmp_path,
                                                     monkeypatch, capsys):
        from repro.cli import main
        from repro.engine import configure_default_tile_cache

        monkeypatch.setattr(tile_cache_module, "_default_cache", None)
        arguments = ["image-layout", "--width", "64", "--height", "64",
                     "--tile-size", "32", "--pixel-size-nm", "8",
                     "--guard", "0", "--tile-cache",
                     "--output", str(tmp_path / "aerial.npz")]
        configure_default_tile_cache(str(tmp_path / "tile-cache"))
        assert main(arguments) == 0
        cold = capsys.readouterr().out
        assert "tile cache:" in cold
        # Fresh in-memory tier, same disk tier: the warm run images nothing.
        configure_default_tile_cache(str(tmp_path / "tile-cache"))
        assert main(arguments) == 0
        warm = capsys.readouterr().out
        assert "100.0% hit rate, 0 imaged" in warm

    def test_no_tile_cache_flag_disables_env(self, tmp_path, monkeypatch,
                                             capsys):
        from repro.cli import main

        monkeypatch.setattr(tile_cache_module, "_default_cache", None)
        monkeypatch.setenv("REPRO_TILE_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["image-layout", "--width", "32", "--height", "32",
                     "--tile-size", "32", "--pixel-size-nm", "8",
                     "--guard", "0", "--no-tile-cache",
                     "--output", str(tmp_path / "aerial.npz")]) == 0
        assert "tile cache:" not in capsys.readouterr().out
