"""Tests for the compute-backend layer (repro.backend) and its engine wiring.

Pinned guarantees:

* backend registry: explicit names, ``REPRO_FFT_BACKEND`` selection, loud
  failure (listing registered backends) for unknown values, and pluggable
  registration,
* the ``rfft2`` half-spectrum paths (mask spectra and the band-limited
  Fourier upsampling) equal the retained full-spectrum paths to ~1e-12
  relative in float64 — property-tested over random masks,
* float32 aerial images agree with the float64 reference within the
  documented ``Precision.aerial_rtol`` (~1e-4), including through the
  tiled / stitched layout path,
* the kernel-bank cache keys banks by precision (banks never mix dtypes),
  and the byte-denominated chunk budget doubles the effective batch size at
  single precision,
* ``EngineSpec`` resolves and round-trips backend + precision, so sharded
  workers reconstruct the parent's exact compute policy.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.backend import (
    FLOAT32,
    FLOAT64,
    FFTBackend,
    NumpyFFTBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_precision,
)
from repro.backend.fft import _REGISTRY
from repro.engine import (
    EngineSpec,
    ExecutionEngine,
    KernelBankCache,
    batch_chunk_size,
    batched_aerial_from_kernels,
)
from repro.optics import OpticsConfig
from repro.optics.aerial import mask_spectrum
from repro.optics.grid import embed_centre, embed_centre_unshifted
from repro.optics.pupil import Pupil
from repro.optics.source import CircularSource

FINE = OpticsConfig(tile_size_px=64, pixel_size_nm=4.0, max_socs_order=12)
SOURCE = CircularSource(sigma=0.6)


@pytest.fixture(scope="module")
def kernels():
    bank = KernelBankCache().get_kernels(FINE, SOURCE, Pupil())
    return bank.kernels


binary_masks = arrays(np.float64, (3, 64, 64), elements=st.sampled_from([0.0, 1.0]))


class TestRegistry:
    def test_numpy_always_available(self):
        backend = get_backend("numpy")
        assert isinstance(backend, NumpyFFTBackend)
        assert backend.name == "numpy"
        assert "numpy" in registered_backends()
        assert "numpy" in available_backends()

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_BACKEND", "numpy")
        assert get_backend().name == "numpy"

    def test_bogus_env_value_fails_loudly_with_registered_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_BACKEND", "warpdrive")
        with pytest.raises(ValueError) as excinfo:
            get_backend()
        message = str(excinfo.value)
        assert "warpdrive" in message
        assert "REPRO_FFT_BACKEND" in message
        for name in registered_backends():
            assert name in message

    def test_bogus_argument_fails_loudly(self):
        with pytest.raises(ValueError, match="registered backends"):
            get_backend("not-a-backend")

    def test_auto_prefers_scipy_when_importable(self):
        pytest.importorskip("scipy.fft")
        assert get_backend("auto").name == "scipy"

    def test_register_backend_makes_name_selectable(self):
        class Probe(NumpyFFTBackend):
            name = "probe"

        register_backend("probe", lambda workers: Probe(workers=workers))
        try:
            assert get_backend("probe").name == "probe"
            assert "probe" in registered_backends()
        finally:
            _REGISTRY.pop("probe", None)

    def test_reserved_names_rejected(self):
        with pytest.raises(ValueError):
            register_backend("auto", lambda workers: NumpyFFTBackend())

    def test_engine_spec_rejects_bogus_backend(self):
        with pytest.raises(ValueError, match="registered backends"):
            EngineSpec(config=FINE, fft_backend="warpdrive")


class TestPrecisionPolicy:
    def test_defaults_to_float64(self):
        assert resolve_precision() is FLOAT64
        assert resolve_precision(None).complex_dtype == np.complex128

    @pytest.mark.parametrize("spelling", ["float32", "single", np.float32,
                                          np.complex64, FLOAT32])
    def test_float32_spellings(self, spelling):
        assert resolve_precision(spelling) is FLOAT32

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRECISION", "float32")
        assert resolve_precision() is FLOAT32

    def test_unknown_precision_fails_loudly(self):
        with pytest.raises(ValueError, match="supported precisions"):
            resolve_precision("float16")

    def test_byte_budget_doubles_float32_batch(self):
        # Same byte cap, half the itemsize -> twice the masks per chunk.
        cap = 24 * 64 * 64 * 16 * 2
        assert batch_chunk_size(16, 24, 64, 64, cap, itemsize=16) == 2
        assert batch_chunk_size(16, 24, 64, 64, cap, itemsize=8) == 4

    def test_cache_banks_never_mix_dtypes(self):
        cache = KernelBankCache()
        bank64 = cache.get_kernels(FINE, SOURCE, Pupil())
        bank32 = cache.get_kernels(FINE, SOURCE, Pupil(), precision="float32")
        assert bank64.kernels.dtype == np.complex128
        assert bank32.kernels.dtype == np.complex64
        assert bank64 is cache.get_kernels(FINE, SOURCE, Pupil())
        assert bank32 is cache.get_kernels(FINE, SOURCE, Pupil(),
                                           precision=np.float32)
        # One eigendecomposition serves both precisions (float32 is a cast).
        assert cache.stats.decompositions == 1
        np.testing.assert_allclose(bank32.kernels,
                                   bank64.kernels.astype(np.complex64))

    def test_env_selected_float32_bank_terminates(self, monkeypatch):
        """REPRO_PRECISION=float32 must not recurse while deriving the master.

        The float32 bank is cast from the float64 master; requesting that
        master with ``precision=None`` would re-resolve the environment and
        loop forever — pinned here with the env var actually set.
        """
        monkeypatch.setenv("REPRO_PRECISION", "float32")
        cache = KernelBankCache()
        bank = cache.get_kernels(FINE, SOURCE, Pupil(), precision=None)
        assert bank.kernels.dtype == np.complex64
        assert cache.stats.decompositions == 1

    def test_cache_disk_roundtrip_preserves_precision(self, tmp_path):
        writer = KernelBankCache(cache_dir=str(tmp_path))
        writer.get_kernels(FINE, SOURCE, Pupil(), precision="float32")
        reader = KernelBankCache(cache_dir=str(tmp_path))
        loaded = reader.get_kernels(FINE, SOURCE, Pupil(), precision="float32")
        assert reader.stats.decompositions == 0
        assert loaded.kernels.dtype == np.complex64


class TestHalfSpectrumEquivalence:
    """rfft2 fast paths == retained full-spectrum paths (to ~1e-12 in float64)."""

    @given(mask=binary_masks)
    @settings(max_examples=10, deadline=None)
    def test_mask_spectrum_half_equals_full(self, mask):
        for backend_name in available_backends():
            backend = get_backend(backend_name)
            half = mask_spectrum(mask, (13, 13), backend=backend)
            full = mask_spectrum(mask, (13, 13), backend=backend, real_fft=False)
            np.testing.assert_allclose(half, full, rtol=0, atol=1e-12)

    def test_mask_spectrum_full_window_and_odd_sizes(self):
        rng = np.random.default_rng(11)
        for shape, window in [((47, 53), (9, 7)), ((48, 48), None),
                              ((33, 48), (33, 48)), ((24, 24), (10, 13))]:
            mask = rng.random(shape)
            half = mask_spectrum(mask, window)
            full = mask_spectrum(mask, window, real_fft=False)
            np.testing.assert_allclose(half, full, rtol=0, atol=1e-12)

    def test_mask_spectrum_rejects_oversized_window(self):
        with pytest.raises(ValueError):
            mask_spectrum(np.zeros((8, 8)), (9, 9))
        with pytest.raises(ValueError, match="real"):
            mask_spectrum(np.zeros((8, 8), dtype=complex), real_fft=True)

    @given(mask=binary_masks)
    @settings(max_examples=8, deadline=None)
    def test_batched_aerial_half_equals_full_spectrum(self, kernels, mask):
        fast = batched_aerial_from_kernels(mask, kernels, backend="numpy",
                                           real_fft=True)
        full = batched_aerial_from_kernels(mask, kernels, backend="numpy",
                                           real_fft=False)
        np.testing.assert_allclose(fast, full, rtol=1e-12, atol=1e-12)

    def test_direct_path_half_equals_full_spectrum(self, kernels):
        masks = (np.random.default_rng(3).random((4, 64, 64)) > 0.6).astype(float)
        fast = batched_aerial_from_kernels(masks, kernels, band_limited=False,
                                           backend="numpy", real_fft=True)
        full = batched_aerial_from_kernels(masks, kernels, band_limited=False,
                                           backend="numpy", real_fft=False)
        np.testing.assert_allclose(fast, full, rtol=1e-12, atol=1e-12)

    def test_embed_centre_unshifted_equals_shifted_embed(self):
        """The fused embed IS ifftshift(embed_centre(...)) — bit for bit.

        This is what removed the per-chunk full-size ``ifftshift`` from the
        batched hot loop.
        """
        rng = np.random.default_rng(7)
        for block_shape, target in [((5, 9, 7), (16, 16)), ((3, 8, 8), (8, 8)),
                                    ((2, 1, 1), (5, 4)), ((4, 13, 13), (47, 53))]:
            block = rng.normal(size=block_shape) + 1j * rng.normal(size=block_shape)
            fused = embed_centre_unshifted(block, *target)
            reference = np.fft.ifftshift(embed_centre(block, *target),
                                         axes=(-2, -1))
            np.testing.assert_array_equal(fused, reference)

    def test_backends_agree_on_aerials(self, kernels):
        """Every available backend images the shared fixture to ~1e-12."""
        masks = (np.random.default_rng(9).random((3, 64, 64)) > 0.7).astype(float)
        reference = batched_aerial_from_kernels(masks, kernels, backend="numpy")
        for name in available_backends():
            other = batched_aerial_from_kernels(masks, kernels, backend=name)
            np.testing.assert_allclose(other, reference, rtol=1e-12, atol=1e-12)

    def test_scipy_workers_never_change_results(self, kernels):
        pytest.importorskip("scipy.fft")
        masks = (np.random.default_rng(10).random((4, 64, 64)) > 0.7).astype(float)
        one = batched_aerial_from_kernels(
            masks, kernels, backend=get_backend("scipy", workers=1))
        many = batched_aerial_from_kernels(
            masks, kernels, backend=get_backend("scipy", workers=4))
        np.testing.assert_array_equal(one, many)


class TestFloat32Accuracy:
    """float32 aerials within the documented rtol (~1e-4) of float64."""

    @given(mask=binary_masks)
    @settings(max_examples=8, deadline=None)
    def test_single_precision_aerials_within_documented_rtol(self, kernels, mask):
        ref = batched_aerial_from_kernels(mask, kernels, precision="float64")
        low = batched_aerial_from_kernels(mask, kernels, precision="float32")
        assert low.dtype == np.float32
        scale = max(float(ref.max()), 1e-30)
        assert np.abs(low - ref).max() / scale < FLOAT32.aerial_rtol

    def test_tiled_stitched_path_within_documented_rtol(self):
        layout = (np.random.default_rng(5).random((192, 256)) > 0.8).astype(float)
        cache = KernelBankCache()
        ref = ExecutionEngine.for_optics(FINE, source=SOURCE, cache=cache) \
            .image_layout(layout, tile_px=64, guard_px=16)
        low = ExecutionEngine.for_optics(FINE, source=SOURCE, cache=cache,
                                         precision="float32") \
            .image_layout(layout, tile_px=64, guard_px=16)
        assert low.aerial.dtype == np.float32
        scale = float(ref.aerial.max())
        assert np.abs(low.aerial - ref.aerial).max() / scale < FLOAT32.aerial_rtol
        # Resist patterns may differ only where the aerial grazes the
        # threshold; on this fixture they agree everywhere.
        assert (low.resist != ref.resist).mean() < 1e-3

    def test_engine_rejects_workers_with_backend_instance(self, kernels):
        """fft_workers cannot silently miss an already-built backend."""
        with pytest.raises(ValueError, match="fft_workers"):
            ExecutionEngine(kernels, fft_backend=get_backend("numpy"),
                            fft_workers=4)

    def test_engine_preserves_policy_through_truncate(self):
        cache = KernelBankCache()
        engine = ExecutionEngine.for_optics(FINE, source=SOURCE, cache=cache,
                                            fft_backend="numpy",
                                            precision="float32")
        truncated = engine.truncate(4)
        assert truncated.precision is FLOAT32
        assert truncated.backend.name == "numpy"
        assert truncated.kernels.dtype == np.complex64


class TestEngineSpecComputePolicy:
    def test_spec_resolves_concrete_backend_and_precision(self):
        spec = EngineSpec(config=FINE, source=SOURCE)
        assert spec.fft_backend in registered_backends()
        assert spec.precision == "float64"

    def test_spec_roundtrips_backend_and_precision(self):
        spec = EngineSpec(config=FINE, source=SOURCE, fft_backend="numpy",
                          fft_workers=3, precision="float32")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.fft_backend == "numpy"
        assert clone.fft_workers == 3
        assert clone.precision == "float32"
        assert clone.fingerprint() == spec.fingerprint()
        engine = clone.build(cache=KernelBankCache())
        assert engine.backend.name == "numpy"
        assert engine.precision is FLOAT32
        assert engine.kernels.dtype == np.complex64

    def test_policy_changes_fingerprint(self):
        base = EngineSpec(config=FINE, source=SOURCE, fft_backend="numpy")
        assert base.fingerprint() != \
            EngineSpec(config=FINE, source=SOURCE, fft_backend="numpy",
                       precision="float32").fingerprint()

    def test_with_focus_keeps_policy(self):
        spec = EngineSpec(config=FINE, source=SOURCE, fft_backend="numpy",
                          precision="float32")
        refocused = spec.with_focus(40.0)
        assert refocused.fft_backend == "numpy"
        assert refocused.precision == "float32"

    def test_spec_resolution_ignores_worker_environment(self, monkeypatch):
        """Policy is frozen at construction: a worker's env cannot reinterpret it."""
        spec = EngineSpec(config=FINE, source=SOURCE)
        monkeypatch.setenv("REPRO_FFT_BACKEND", "warpdrive")
        monkeypatch.setenv("REPRO_PRECISION", "float16")
        # The spec already carries concrete names; building consults them,
        # not the (now bogus) environment.
        engine = spec.build(cache=KernelBankCache())
        assert engine.backend.name == spec.fft_backend
        assert engine.precision.name == "float64"


class TestBackendProtocolCoverage:
    def test_numpy_backend_casts_single_precision_back_down(self):
        backend = get_backend("numpy")
        x32 = np.random.default_rng(0).random((4, 16, 16)).astype(np.float32)
        assert backend.fft2(x32).dtype == np.complex64
        assert backend.rfft2(x32).dtype == np.complex64
        spectrum = backend.rfft2(x32)
        assert backend.irfft2(spectrum, s=(16, 16)).dtype == np.float32
        assert backend.ifft2(backend.fft2(x32)).dtype == np.complex64

    def test_all_available_backends_satisfy_protocol(self):
        rng = np.random.default_rng(1)
        x = rng.random((2, 12, 12))
        for name in available_backends():
            backend = get_backend(name)
            assert isinstance(backend, FFTBackend)
            roundtrip = backend.ifft2(backend.fft2(x, norm="ortho"), norm="ortho")
            np.testing.assert_allclose(np.real(roundtrip), x, atol=1e-10)
            half = backend.rfft2(x, norm="ortho")
            assert half.shape == (2, 12, 7)
            np.testing.assert_allclose(
                backend.irfft2(half, s=(12, 12), norm="ortho"), x, atol=1e-10)
