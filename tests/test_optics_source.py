"""Tests for illumination-source models (repro.optics.source)."""

import numpy as np
import pytest

from repro.optics.grid import make_grid
from repro.optics.source import (
    AnnularSource,
    CircularSource,
    DipoleSource,
    PixelatedSource,
    QuadrupoleSource,
    make_source,
)

GRID = make_grid(31, 31, field_size_nm=2000.0, wavelength_nm=193.0, numerical_aperture=1.35)


class TestCircularSource:
    def test_intensity_inside_sigma_only(self):
        source = CircularSource(sigma=0.5)
        intensity = source.intensity(GRID)
        assert intensity[15, 15] == 1.0          # DC is inside
        assert intensity[0, 0] == 0.0            # far corner is outside

    def test_larger_sigma_has_more_area(self):
        small = CircularSource(sigma=0.3).intensity(GRID).sum()
        large = CircularSource(sigma=0.9).intensity(GRID).sum()
        assert large > small

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            CircularSource(sigma=0.0)
        with pytest.raises(ValueError):
            CircularSource(sigma=1.5)

    def test_normalized_intensity_sums_to_one(self):
        total = CircularSource(sigma=0.6).normalized_intensity(GRID).sum()
        assert total == pytest.approx(1.0)


class TestAnnularSource:
    def test_hole_in_the_middle(self):
        source = AnnularSource(sigma_inner=0.4, sigma_outer=0.8)
        intensity = source.intensity(GRID)
        assert intensity[15, 15] == 0.0

    def test_ring_is_populated(self):
        source = AnnularSource(sigma_inner=0.4, sigma_outer=0.9)
        assert source.intensity(GRID).sum() > 0

    def test_invalid_radii(self):
        with pytest.raises(ValueError):
            AnnularSource(sigma_inner=0.8, sigma_outer=0.5)
        with pytest.raises(ValueError):
            AnnularSource(sigma_inner=0.2, sigma_outer=1.5)


class TestShapedSources:
    def test_dipole_has_two_poles(self):
        intensity = DipoleSource(centre=0.6, pole_radius=0.2).intensity(GRID)
        # poles on the x axis: intensity on the horizontal midline, none on the vertical
        assert intensity[15, :].sum() > 0
        assert intensity[15, 15] == 0.0

    def test_dipole_vertical_flag(self):
        horizontal = DipoleSource(vertical=False).intensity(GRID)
        vertical = DipoleSource(vertical=True).intensity(GRID)
        np.testing.assert_allclose(vertical, horizontal.T)

    def test_quadrupole_symmetry(self):
        intensity = QuadrupoleSource(centre=0.6, pole_radius=0.25).intensity(GRID)
        np.testing.assert_allclose(intensity, np.flipud(intensity))
        np.testing.assert_allclose(intensity, np.fliplr(intensity))
        assert intensity.sum() > 0

    def test_pixelated_source_validation(self):
        with pytest.raises(ValueError):
            PixelatedSource(np.ones((3, 3, 3)))
        with pytest.raises(ValueError):
            PixelatedSource(-np.ones((3, 3)))

    def test_pixelated_source_shape_mismatch(self):
        source = PixelatedSource(np.ones((5, 5)))
        with pytest.raises(ValueError):
            source.intensity(GRID)

    def test_pixelated_source_passthrough(self):
        pixels = np.random.default_rng(0).random((31, 31))
        np.testing.assert_allclose(PixelatedSource(pixels).intensity(GRID), pixels)

    def test_all_zero_source_raises_on_normalisation(self):
        source = PixelatedSource(np.zeros((31, 31)))
        with pytest.raises(ValueError):
            source.normalized_intensity(GRID)


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_source("circular", sigma=0.5), CircularSource)
        assert isinstance(make_source("ANNULAR"), AnnularSource)
        assert isinstance(make_source("dipole"), DipoleSource)
        assert isinstance(make_source("quadrupole"), QuadrupoleSource)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_source("laser")
