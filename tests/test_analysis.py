"""Tests for the analysis tooling: t-SNE, throughput measurement, reporting, visual dumps."""

import os

import numpy as np
import pytest

from repro.analysis.reporting import format_table, format_value, ratio_row, render_bar_chart, render_series
from repro.analysis.throughput import compare_throughput, measure_throughput, speedup, tile_area_um2
from repro.analysis.tsne import TSNE, cluster_separation, embed_datasets, mask_features
from repro.analysis.visualize import ascii_image, comparison_panel, save_comparison_pgms, write_pgm

RNG = np.random.default_rng(13)


class TestTSNE:
    def test_embedding_shape(self):
        features = RNG.normal(size=(20, 10))
        embedding = TSNE(iterations=50, perplexity=5).fit_transform(features)
        assert embedding.shape == (20, 2)
        assert np.all(np.isfinite(embedding))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(RNG.normal(size=(2, 3)))
        with pytest.raises(ValueError):
            TSNE().fit_transform(RNG.normal(size=(5,)))
        with pytest.raises(ValueError):
            TSNE(perplexity=1.0)
        with pytest.raises(ValueError):
            TSNE(iterations=0)

    def test_separates_well_separated_clusters(self):
        cluster_a = RNG.normal(loc=0.0, scale=0.1, size=(15, 5))
        cluster_b = RNG.normal(loc=5.0, scale=0.1, size=(15, 5))
        features = np.concatenate([cluster_a, cluster_b])
        embedding = TSNE(iterations=250, perplexity=5, seed=0).fit_transform(features)
        first, second = embedding[:15], embedding[15:]
        centroid_gap = np.linalg.norm(first.mean(axis=0) - second.mean(axis=0))
        spread = 0.5 * (first.std() + second.std())
        assert centroid_gap > 2 * spread

    def test_mask_features_shape_and_normalisation(self, tiny_masks):
        features = mask_features(tiny_masks, resolution=8)
        assert features.shape == (len(tiny_masks), 64)
        np.testing.assert_allclose(np.linalg.norm(features, axis=1), 1.0, atol=1e-9)

    def test_mask_features_translation_invariance(self, tiny_masks):
        mask = tiny_masks[0]
        shifted = np.roll(mask, (7, -5), axis=(0, 1))
        a = mask_features(mask[None], resolution=8)
        b = mask_features(shifted[None], resolution=8)
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_embed_datasets_and_separation(self, tiny_masks, tiny_via_masks):
        result = embed_datasets({"B1": tiny_masks, "B2v": tiny_via_masks},
                                samples_per_dataset=4, iterations=80, perplexity=3)
        assert result.embedding.shape[0] == 8
        assert set(result.labels) == {"B1", "B2v"}
        assert cluster_separation(result) > 0
        groups = result.by_label()
        assert groups["B1"].shape == (4, 2)

    def test_embed_datasets_empty_raises(self):
        with pytest.raises(ValueError):
            embed_datasets({"empty": np.zeros((0, 8, 8))})


class TestThroughput:
    def test_tile_area(self):
        assert tile_area_um2(256, 8.0) == pytest.approx(4.194, abs=0.01)
        with pytest.raises(ValueError):
            tile_area_um2(0, 8.0)

    def test_measure_throughput_counts_tiles(self):
        calls = []

        def engine(mask):
            calls.append(1)
            return mask

        masks = [np.zeros((16, 16))] * 3
        result = measure_throughput("dummy", engine, masks, pixel_size_nm=8.0, repeats=2, warmup=1)
        assert len(calls) == 1 + 2 * 3
        assert result.tiles_per_second > 0
        assert result.um2_per_second == pytest.approx(
            result.tiles_per_second * tile_area_um2(16, 8.0))

    def test_measure_requires_masks(self):
        with pytest.raises(ValueError):
            measure_throughput("dummy", lambda m: m, [], pixel_size_nm=8.0)

    def test_measure_sharded_throughput(self, tmp_path):
        from repro.analysis.throughput import measure_sharded_throughput
        from repro.engine import EngineSpec
        from repro.optics import OpticsConfig
        from repro.optics.source import CircularSource

        spec = EngineSpec(
            config=OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, max_socs_order=8),
            source=CircularSource(sigma=0.6))
        masks = (np.random.default_rng(5).random((4, 32, 32)) > 0.7).astype(float)
        result = measure_sharded_throughput(spec, masks, pixel_size_nm=8.0,
                                            num_workers=2,
                                            cache_dir=str(tmp_path))
        assert result.identical  # sharding is invisible in the output
        assert result.num_workers == 2
        assert result.serial.tiles_per_second > 0
        assert result.sharded.tiles_per_second > 0
        assert result.speedup == pytest.approx(
            result.sharded.um2_per_second / result.serial.um2_per_second)
        with pytest.raises(ValueError):
            measure_sharded_throughput(spec, masks, pixel_size_nm=8.0, num_workers=1)

    def test_compare_and_speedup(self):
        import time

        def fast(mask):
            return mask

        def slow(mask):
            time.sleep(0.002)
            return mask

        masks = [np.zeros((8, 8))] * 2
        results = compare_throughput({"fast": fast, "slow": slow}, masks, pixel_size_nm=8.0)
        assert results["fast"].um2_per_second > results["slow"].um2_per_second
        assert speedup(results, "fast", "slow") > 1.0
        with pytest.raises(KeyError):
            speedup(results, "fast", "missing")


def _allocate_mib(mib: int) -> None:
    """Module-level (picklable) allocation target for peak-RSS measurement."""
    block = np.ones((mib, 1024, 1024 // 8))  # mib MiB of float64
    block += 1.0


def _raise_in_child() -> None:
    """Module-level (picklable under spawn) failing measurement target."""
    raise RuntimeError("child failed")


class TestPeakMemory:
    def test_bigger_allocation_bigger_peak(self):
        from repro.analysis.throughput import measure_peak_memory

        small = measure_peak_memory(_allocate_mib, 8)
        large = measure_peak_memory(_allocate_mib, 128)
        assert small.peak_bytes > 0
        assert small.elapsed_s >= 0
        if small.in_subprocess and large.in_subprocess:
            # Fresh-process high-water marks: the 128 MiB allocation must
            # show up against the 8 MiB one.
            assert large.peak_bytes >= small.peak_bytes + 64 * 2 ** 20
        assert large.peak_mib == pytest.approx(large.peak_bytes / 2 ** 20)

    def test_child_failure_is_reported(self):
        from repro.analysis.throughput import measure_peak_memory

        probe = measure_peak_memory(_allocate_mib, 1)
        if not probe.in_subprocess:
            pytest.skip("subprocesses unavailable; fallback mode runs inline")
        with pytest.raises(RuntimeError):
            measure_peak_memory(_raise_in_child)


class TestReporting:
    def test_format_value_styles(self):
        assert format_value(3) == "3"
        assert format_value(0.5) == "0.5"
        assert "e" in format_value(1.23e-9)
        assert format_value(True) == "True"
        assert format_value("x") == "x"

    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert len({len(line) for line in lines[1:]}) == 1  # fixed width

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="t")

    def test_format_table_missing_column(self):
        table = format_table([{"a": 1}], columns=["a", "missing"])
        assert "missing" in table

    def test_ratio_row(self):
        rows = [{"mse": 2.0}, {"mse": 4.0}]
        reference = {"mse": 1.0}
        row = ratio_row(rows, reference, ["mse"], label="Ratio")
        assert row["mse"] == pytest.approx(3.0)
        assert row["bench"] == "Ratio"

    def test_render_bar_chart(self):
        chart = render_bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") > lines[1].count("#")
        assert render_bar_chart({}) == "(empty)"

    def test_render_series(self):
        table = render_series({"x": [1, 2], "y": [3.0, 4.0]})
        assert "3" in table and "4" in table
        with pytest.raises(ValueError):
            render_series({"x": [1, 2], "y": [3.0]})
        assert render_series({}) == "(empty)"


class TestVisualize:
    def test_ascii_image_dimensions(self):
        art = ascii_image(RNG.random((32, 64)), width=32)
        lines = art.splitlines()
        assert len(lines[0]) == 32
        assert len(lines) >= 4

    def test_ascii_image_dark_vs_bright(self):
        dark = ascii_image(np.zeros((8, 8)), width=8)
        assert set(dark) <= {" ", "\n"}

    def test_write_pgm(self, tmp_path):
        path = write_pgm(RNG.random((16, 16)), str(tmp_path / "img" / "test.pgm"))
        assert os.path.exists(path)
        with open(path, "rb") as handle:
            header = handle.read(2)
        assert header == b"P5"

    def test_comparison_panel_contains_captions(self):
        panel = comparison_panel({"Mask": np.zeros((8, 8)), "Aerial": np.ones((8, 8))}, width=16)
        assert "Mask" in panel and "Aerial" in panel

    def test_save_comparison_pgms(self, tmp_path):
        paths = save_comparison_pgms({"A b": np.zeros((8, 8))}, str(tmp_path), prefix="fig")
        assert all(os.path.exists(path) for path in paths.values())
        assert all("fig_" in os.path.basename(path) for path in paths.values())
