"""Tests for convolution / pooling / upsampling layers (repro.nn.conv)."""

import numpy as np
import pytest
from scipy import signal

from repro import nn
from repro.nn import functional as F
from repro.nn.conv import avg_pool2d, conv2d, upsample2x
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(5)


class TestConvForward:
    def test_matches_scipy_cross_correlation(self):
        image = RNG.normal(size=(1, 1, 8, 8))
        kernel = RNG.normal(size=(1, 1, 3, 3))
        out = conv2d(Tensor(image), Tensor(kernel), stride=1, padding=1).data[0, 0]
        reference = signal.correlate2d(image[0, 0], kernel[0, 0], mode="same")
        np.testing.assert_allclose(out, reference, atol=1e-10)

    def test_output_shape_stride2(self):
        out = conv2d(Tensor(np.zeros((2, 3, 8, 8))), Tensor(np.zeros((4, 3, 3, 3))),
                     stride=2, padding=1)
        assert out.shape == (2, 4, 4, 4)

    def test_bias_is_added_per_channel(self):
        image = np.zeros((1, 1, 4, 4))
        kernel = np.zeros((2, 1, 1, 1))
        bias = np.array([1.5, -2.0])
        out = conv2d(Tensor(image), Tensor(kernel), Tensor(bias)).data
        np.testing.assert_allclose(out[0, 0], 1.5)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_multi_channel_sum(self):
        image = np.ones((1, 3, 4, 4))
        kernel = np.ones((1, 3, 1, 1))
        out = conv2d(Tensor(image), Tensor(kernel)).data
        np.testing.assert_allclose(out, 3.0)


class TestConvBackward:
    def test_weight_gradient_numerical(self):
        image = Tensor(RNG.normal(size=(1, 2, 5, 5)))
        weight = Tensor(RNG.normal(size=(3, 2, 3, 3)), requires_grad=True)
        loss = F.sum(F.square(conv2d(image, weight, padding=1)))
        loss.backward()
        eps = 1e-6
        index = (1, 0, 2, 1)
        perturbed = weight.data.copy()
        perturbed[index] += eps
        plus = np.sum(conv2d(image, Tensor(perturbed), padding=1).data ** 2)
        perturbed[index] -= 2 * eps
        minus = np.sum(conv2d(image, Tensor(perturbed), padding=1).data ** 2)
        numeric = (plus - minus) / (2 * eps)
        assert weight.grad[index] == pytest.approx(numeric, rel=1e-4)

    def test_input_gradient_numerical(self):
        image = Tensor(RNG.normal(size=(1, 1, 5, 5)), requires_grad=True)
        weight = Tensor(RNG.normal(size=(2, 1, 3, 3)))
        loss = F.sum(F.square(conv2d(image, weight, stride=2, padding=1)))
        loss.backward()
        eps = 1e-6
        index = (0, 0, 3, 2)
        perturbed = image.data.copy()
        perturbed[index] += eps
        plus = np.sum(conv2d(Tensor(perturbed), weight, stride=2, padding=1).data ** 2)
        perturbed[index] -= 2 * eps
        minus = np.sum(conv2d(Tensor(perturbed), weight, stride=2, padding=1).data ** 2)
        numeric = (plus - minus) / (2 * eps)
        assert image.grad[index] == pytest.approx(numeric, rel=1e-4)

    def test_bias_gradient_is_output_sum(self):
        image = Tensor(RNG.normal(size=(2, 1, 4, 4)))
        weight = Tensor(RNG.normal(size=(1, 1, 3, 3)))
        bias = Tensor(np.zeros(1), requires_grad=True)
        out = conv2d(image, weight, bias, padding=1)
        F.sum(out).backward()
        assert bias.grad[0] == pytest.approx(2 * 4 * 4)


class TestPoolingAndUpsampling:
    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_requires_divisible_size(self):
        with pytest.raises(ValueError):
            avg_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)

    def test_upsample_shape_and_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = upsample2x(Tensor(x)).data
        assert out.shape == (1, 1, 4, 4)
        assert out[0, 0, 0, 0] == 1.0 and out[0, 0, 1, 1] == 1.0
        assert out[0, 0, 3, 3] == 4.0

    def test_upsample_then_pool_is_identity(self):
        x = RNG.normal(size=(2, 3, 4, 4))
        out = avg_pool2d(upsample2x(Tensor(x)), 2).data
        np.testing.assert_allclose(out, x)

    def test_upsample_gradient(self):
        x = Tensor(RNG.normal(size=(1, 1, 3, 3)), requires_grad=True)
        F.sum(F.square(upsample2x(x))).backward()
        np.testing.assert_allclose(x.grad, 8 * x.data)  # each pixel appears 4x, d/dx of x^2 = 2x

    def test_avg_pool_gradient(self):
        x = Tensor(RNG.normal(size=(1, 1, 4, 4)), requires_grad=True)
        F.sum(avg_pool2d(x, 2)).backward()
        np.testing.assert_allclose(x.grad, 0.25)


class TestConvModules:
    def test_conv2d_module_shapes(self):
        layer = nn.Conv2d(3, 5, kernel_size=3, stride=1, padding=1)
        out = layer(Tensor(RNG.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 5, 8, 8)

    def test_conv2d_module_no_bias(self):
        layer = nn.Conv2d(1, 1, kernel_size=3, bias=False)
        assert "bias" not in dict(layer.named_parameters())

    def test_conv_module_trains_to_identity(self):
        """A 1x1 conv can learn to scale its input by a constant."""
        layer = nn.Conv2d(1, 1, kernel_size=1, rng=np.random.default_rng(0))
        optimizer = nn.Adam(layer.parameters(), lr=5e-2)
        x = RNG.normal(size=(4, 1, 6, 6))
        target = 3.0 * x
        for _ in range(200):
            loss = F.mse_loss(layer(Tensor(x)), Tensor(target))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert layer.weight.data[0, 0, 0, 0] == pytest.approx(3.0, abs=0.05)

    def test_pool_and_upsample_modules(self):
        x = Tensor(RNG.normal(size=(1, 2, 4, 4)))
        assert nn.AvgPool2d(2)(x).shape == (1, 2, 2, 2)
        assert nn.Upsample2x()(x).shape == (1, 2, 8, 8)
