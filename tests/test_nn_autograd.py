"""Numerical gradient checks for the Wirtinger-calculus autograd engine.

For a real-valued loss L(x), the stored gradient of a real tensor must match
dL/dx and the gradient of a complex tensor must match dL/da + i dL/db
(central finite differences on the real and imaginary parts).
"""

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

EPS = 1e-6
RTOL = 1e-4
ATOL = 1e-6


def numerical_gradient(loss_fn, value: np.ndarray) -> np.ndarray:
    """Central-difference gradient of a real scalar loss w.r.t. ``value``."""
    value = np.asarray(value)
    grad = np.zeros_like(value, dtype=np.complex128 if np.iscomplexobj(value) else np.float64)
    flat = value.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + EPS
        plus = loss_fn(value)
        flat[index] = original - EPS
        minus = loss_fn(value)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * EPS)
        if np.iscomplexobj(value):
            flat[index] = original + 1j * EPS
            plus = loss_fn(value)
            flat[index] = original - 1j * EPS
            minus = loss_fn(value)
            flat[index] = original
            grad_flat[index] += 1j * (plus - minus) / (2 * EPS)
    return grad


def check_gradient(build_loss, value: np.ndarray) -> None:
    """Compare the autograd gradient of ``build_loss`` against finite differences."""
    tensor_value = Tensor(value.copy(), requires_grad=True)
    loss = build_loss(tensor_value)
    loss.backward()
    analytic = tensor_value.grad

    def numeric_fn(array):
        return float(build_loss(Tensor(array.copy())).item())

    numeric = numerical_gradient(numeric_fn, value.copy())
    np.testing.assert_allclose(analytic, numeric, rtol=RTOL, atol=ATOL)


RNG = np.random.default_rng(42)


def real_array(*shape):
    return RNG.normal(size=shape)


def complex_array(*shape):
    return RNG.normal(size=shape) + 1j * RNG.normal(size=shape)


class TestRealGradients:
    def test_add(self):
        other = Tensor(real_array(3, 4))
        check_gradient(lambda x: F.sum(F.add(x, other)), real_array(3, 4))

    def test_add_broadcast(self):
        other = Tensor(real_array(4))
        check_gradient(lambda x: F.sum(F.square(F.add(x, other))), real_array(3, 4))

    def test_sub(self):
        other = Tensor(real_array(3))
        check_gradient(lambda x: F.sum(F.square(F.sub(x, other))), real_array(3))

    def test_mul(self):
        other = Tensor(real_array(2, 3))
        check_gradient(lambda x: F.sum(F.mul(x, other)), real_array(2, 3))

    def test_div(self):
        other = Tensor(real_array(3) + 2.0)
        check_gradient(lambda x: F.sum(F.div(x, other)), real_array(3))

    def test_div_denominator(self):
        numerator = Tensor(real_array(3))
        check_gradient(lambda x: F.sum(F.div(numerator, x)), real_array(3) + 2.0)

    def test_matmul_left(self):
        other = Tensor(real_array(4, 2))
        check_gradient(lambda x: F.sum(F.matmul(x, other)), real_array(3, 4))

    def test_matmul_right(self):
        other = Tensor(real_array(3, 4))
        check_gradient(lambda x: F.sum(F.square(F.matmul(other, x))), real_array(4, 2))

    def test_power(self):
        check_gradient(lambda x: F.sum(F.power(x, 3.0)), np.abs(real_array(4)) + 0.5)

    def test_exp(self):
        check_gradient(lambda x: F.sum(F.exp(x)), real_array(4))

    def test_log(self):
        check_gradient(lambda x: F.sum(F.log(x)), np.abs(real_array(4)) + 0.5)

    def test_sqrt(self):
        check_gradient(lambda x: F.sum(F.sqrt(x)), np.abs(real_array(4)) + 0.5)

    def test_sum_with_axis(self):
        check_gradient(lambda x: F.sum(F.square(F.sum(x, axis=1))), real_array(3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda x: F.sum(F.square(F.sum(x, axis=0, keepdims=True))), real_array(3, 4))

    def test_mean(self):
        check_gradient(lambda x: F.sum(F.square(F.mean(x, axis=1))), real_array(3, 4))

    def test_reshape(self):
        check_gradient(lambda x: F.sum(F.square(F.reshape(x, (6,)))), real_array(2, 3))

    def test_transpose(self):
        weight = Tensor(real_array(3, 2))
        check_gradient(lambda x: F.sum(F.mul(F.transpose(x, (1, 0)), weight)), real_array(2, 3))

    def test_getitem(self):
        check_gradient(lambda x: F.sum(F.square(F.getitem(x, (slice(0, 2), 1)))), real_array(3, 3))

    def test_concatenate(self):
        other = Tensor(real_array(2, 3))
        check_gradient(lambda x: F.sum(F.square(F.concatenate([x, other], axis=0))), real_array(2, 3))

    def test_stack(self):
        other = Tensor(real_array(2, 2))
        check_gradient(lambda x: F.sum(F.square(F.stack([x, other], axis=0))), real_array(2, 2))

    def test_pad2d(self):
        check_gradient(lambda x: F.sum(F.square(F.pad2d(x, 1))), real_array(3, 3))

    def test_crop_center(self):
        check_gradient(lambda x: F.sum(F.square(F.crop_center(x, 2, 2))), real_array(4, 4))

    def test_embed_center(self):
        check_gradient(lambda x: F.sum(F.square(F.embed_center(x, 5, 5))), real_array(3, 3))

    def test_relu(self):
        check_gradient(lambda x: F.sum(F.square(F.relu(x))), real_array(5) + 0.1)

    def test_leaky_relu(self):
        check_gradient(lambda x: F.sum(F.square(F.leaky_relu(x, 0.1))), real_array(5) + 0.1)

    def test_sigmoid(self):
        check_gradient(lambda x: F.sum(F.square(F.sigmoid(x))), real_array(4))

    def test_tanh(self):
        check_gradient(lambda x: F.sum(F.square(F.tanh(x))), real_array(4))

    def test_clamp(self):
        check_gradient(lambda x: F.sum(F.square(F.clamp(x, -0.5, 0.5))), real_array(5) * 2.0 + 0.05)

    def test_abs_real(self):
        check_gradient(lambda x: F.sum(F.abs(x)), real_array(4) + 2.0)

    def test_mse_loss(self):
        target = Tensor(real_array(3, 3))
        check_gradient(lambda x: F.mse_loss(x, target), real_array(3, 3))

    def test_l1_loss(self):
        target = Tensor(real_array(3, 3))
        check_gradient(lambda x: F.l1_loss(x, target), real_array(3, 3) + 3.0)

    def test_bce_with_logits(self):
        target = Tensor((real_array(4) > 0).astype(float))
        check_gradient(lambda x: F.bce_with_logits_loss(x, target), real_array(4))


class TestComplexGradients:
    def test_mul_complex(self):
        other = Tensor(complex_array(3))
        check_gradient(lambda z: F.sum(F.abs2(F.mul(z, other))), complex_array(3))

    def test_matmul_complex(self):
        other = Tensor(complex_array(3, 2))
        check_gradient(lambda z: F.sum(F.abs2(F.matmul(z, other))), complex_array(2, 3))

    def test_conj(self):
        other = Tensor(complex_array(3))
        check_gradient(lambda z: F.sum(F.abs2(F.add(F.conj(z), other))), complex_array(3))

    def test_real_part(self):
        check_gradient(lambda z: F.sum(F.square(F.real(z))), complex_array(4))

    def test_imag_part(self):
        check_gradient(lambda z: F.sum(F.square(F.imag(z))), complex_array(4))

    def test_abs2(self):
        check_gradient(lambda z: F.sum(F.abs2(z)), complex_array(4))

    def test_abs_complex(self):
        check_gradient(lambda z: F.sum(F.abs(z)), complex_array(4) + 2.0)

    def test_crelu(self):
        check_gradient(lambda z: F.sum(F.abs2(F.crelu(z))), complex_array(4) + (0.1 + 0.1j))

    def test_to_complex(self):
        imaginary = Tensor(real_array(3))
        check_gradient(lambda x: F.sum(F.abs2(F.to_complex(x, imaginary))), real_array(3))

    def test_fft2(self):
        check_gradient(lambda z: F.sum(F.abs2(F.fft2(z))), complex_array(4, 4))

    def test_ifft2(self):
        check_gradient(lambda z: F.sum(F.abs2(F.ifft2(z))), complex_array(4, 4))

    def test_fftshift2(self):
        weight = Tensor(complex_array(4, 4))
        check_gradient(lambda z: F.sum(F.abs2(F.mul(F.fftshift2(z), weight))), complex_array(4, 4))

    def test_ifftshift2(self):
        weight = Tensor(complex_array(5, 5))
        check_gradient(lambda z: F.sum(F.abs2(F.mul(F.ifftshift2(z), weight))), complex_array(5, 5))

    def test_exp_complex(self):
        check_gradient(lambda z: F.sum(F.abs2(F.exp(z))), 0.3 * complex_array(3))

    def test_crop_embed_complex(self):
        check_gradient(
            lambda z: F.sum(F.abs2(F.embed_center(F.crop_center(z, 3, 3), 6, 6))),
            complex_array(5, 5))

    def test_socs_style_pipeline(self):
        """Gradient through the full Algorithm-1 style path: mul -> embed -> ifft -> |.|^2."""
        spectrum = Tensor(complex_array(1, 1, 3, 3))

        def loss(kernels):
            products = F.mul(F.reshape(kernels, (1, 2, 3, 3)), spectrum)
            embedded = F.embed_center(products, 6, 6)
            fields = F.ifft2(F.ifftshift2(embedded))
            intensity = F.sum(F.abs2(fields), axis=1)
            return F.sum(F.square(intensity))

        check_gradient(loss, complex_array(2, 3, 3))

    def test_complex_linear_layer_weight_gradient(self):
        features = Tensor(complex_array(5, 3))

        def loss(weight):
            out = F.crelu(F.matmul(features, weight))
            return F.sum(F.abs2(out))

        check_gradient(loss, complex_array(3, 2))


class TestGradientTypes:
    def test_real_parameter_in_complex_graph_gets_real_grad(self):
        x = Tensor(real_array(3), requires_grad=True)
        k = Tensor(complex_array(3))
        loss = F.sum(F.abs2(F.mul(F.to_complex(x), k)))
        loss.backward()
        assert x.grad.dtype == np.float64

    def test_complex_parameter_gets_complex_grad(self):
        z = Tensor(complex_array(3), requires_grad=True)
        loss = F.sum(F.abs2(z))
        loss.backward()
        assert z.grad.dtype == np.complex128

    def test_gradient_descent_direction_reduces_loss(self):
        z = Tensor(complex_array(4), requires_grad=True)
        target = Tensor(complex_array(4))
        loss = F.sum(F.abs2(F.sub(z, target)))
        loss.backward()
        stepped = z.data - 0.1 * z.grad
        new_loss = np.sum(np.abs(stepped - target.data) ** 2)
        assert new_loss < float(loss.item())
