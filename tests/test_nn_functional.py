"""Value-semantics tests for repro.nn.functional (forward results, shapes, errors)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import functional as F
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(3)


class TestArithmetic:
    def test_add_broadcasts(self):
        out = F.add(Tensor(np.ones((2, 3))), Tensor(np.arange(3.0)))
        np.testing.assert_allclose(out.data, [[1, 2, 3], [1, 2, 3]])

    def test_mul_complex_values(self):
        out = F.mul(Tensor([1 + 1j]), Tensor([2 - 1j]))
        np.testing.assert_allclose(out.data, [3 + 1j])

    def test_div_values(self):
        out = F.div(Tensor([4.0, 9.0]), Tensor([2.0, 3.0]))
        np.testing.assert_allclose(out.data, [2.0, 3.0])

    def test_matmul_shapes(self):
        out = F.matmul(Tensor(np.ones((2, 3))), Tensor(np.ones((3, 4))))
        assert out.shape == (2, 4)
        np.testing.assert_allclose(out.data, 3.0)

    def test_power_matches_numpy(self):
        x = np.abs(RNG.normal(size=5)) + 0.1
        np.testing.assert_allclose(F.power(Tensor(x), 2.5).data, x ** 2.5)

    def test_exp_log_roundtrip(self):
        x = np.abs(RNG.normal(size=5)) + 0.1
        np.testing.assert_allclose(F.exp(F.log(Tensor(x))).data, x)

    def test_clamp(self):
        out = F.clamp(Tensor([-2.0, 0.5, 3.0]), -1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])

    def test_clamp_one_sided(self):
        out = F.clamp(Tensor([-2.0, 2.0]), minimum=0.0)
        np.testing.assert_allclose(out.data, [0.0, 2.0])


class TestReductionsAndShapes:
    def test_sum_axis_tuple(self):
        x = Tensor(np.ones((2, 3, 4)))
        assert F.sum(x, axis=(1, 2)).shape == (2,)
        np.testing.assert_allclose(F.sum(x, axis=(1, 2)).data, 12.0)

    def test_sum_negative_axis(self):
        x = Tensor(np.ones((2, 3)))
        assert F.sum(x, axis=-1).shape == (2,)

    def test_mean_matches_numpy(self):
        data = RNG.normal(size=(3, 4))
        np.testing.assert_allclose(F.mean(Tensor(data), axis=0).data, data.mean(axis=0))

    def test_reshape_and_transpose(self):
        data = np.arange(6.0).reshape(2, 3)
        assert F.reshape(Tensor(data), (3, 2)).shape == (3, 2)
        np.testing.assert_allclose(F.transpose(Tensor(data)).data, data.T)

    def test_concatenate_and_stack(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 2)))
        assert F.concatenate([a, b], axis=1).shape == (2, 4)
        assert F.stack([a, b], axis=0).shape == (2, 2, 2)

    def test_getitem_matches_numpy(self):
        data = np.arange(12.0).reshape(3, 4)
        np.testing.assert_allclose(F.getitem(Tensor(data), (1, slice(None))).data, data[1])

    def test_pad2d_shape(self):
        out = F.pad2d(Tensor(np.ones((1, 1, 4, 4))), (1, 2))
        assert out.shape == (1, 1, 6, 8)

    def test_crop_center_too_large_raises(self):
        with pytest.raises(ValueError):
            F.crop_center(Tensor(np.ones((3, 3))), 5, 5)

    def test_embed_center_too_small_target_raises(self):
        with pytest.raises(ValueError):
            F.embed_center(Tensor(np.ones((5, 5))), 3, 3)

    def test_crop_embed_roundtrip_preserves_centre(self):
        data = RNG.normal(size=(6, 6))
        cropped = F.crop_center(Tensor(data), 4, 4)
        embedded = F.embed_center(cropped, 6, 6)
        np.testing.assert_allclose(embedded.data[1:5, 1:5], data[1:5, 1:5])

    def test_crop_keeps_dc_sample_for_even_to_odd(self):
        """DC (index size//2) must remain the centre sample after an even -> odd crop."""
        data = np.zeros((8, 8))
        data[4, 4] = 1.0  # DC position after fftshift of an 8x8 spectrum
        cropped = F.crop_center(Tensor(data), 5, 5)
        assert cropped.data[2, 2] == 1.0  # centre of a 5x5 window is index 2

    def test_embed_keeps_dc_sample_for_odd_to_even(self):
        data = np.zeros((5, 5))
        data[2, 2] = 1.0
        embedded = F.embed_center(Tensor(data), 8, 8)
        assert embedded.data[4, 4] == 1.0


class TestComplexOps:
    def test_conj_real_imag(self):
        z = Tensor([1 + 2j])
        np.testing.assert_allclose(F.conj(z).data, [1 - 2j])
        np.testing.assert_allclose(F.real(z).data, [1.0])
        np.testing.assert_allclose(F.imag(z).data, [2.0])

    def test_abs2_is_real_dtype(self):
        out = F.abs2(Tensor([3 + 4j]))
        assert out.dtype == np.float64
        np.testing.assert_allclose(out.data, [25.0])

    def test_to_complex_default_imag(self):
        out = F.to_complex(Tensor([1.0, 2.0]))
        assert out.dtype == np.complex128
        np.testing.assert_allclose(out.data.imag, 0.0)


class TestActivations:
    def test_relu_and_leaky(self):
        x = Tensor([-1.0, 2.0])
        np.testing.assert_allclose(F.relu(x).data, [0.0, 2.0])
        np.testing.assert_allclose(F.leaky_relu(x, 0.1).data, [-0.1, 2.0])

    def test_sigmoid_bounds(self):
        out = F.sigmoid(Tensor(RNG.normal(size=50) * 10)).data
        assert np.all(out > 0) and np.all(out < 1)

    def test_tanh_matches_numpy(self):
        x = RNG.normal(size=5)
        np.testing.assert_allclose(F.tanh(Tensor(x)).data, np.tanh(x))

    def test_crelu_definition(self):
        z = Tensor([1 - 2j, -1 + 2j, -3 - 4j])
        np.testing.assert_allclose(F.crelu(z).data, [1 + 0j, 0 + 2j, 0 + 0j])

    def test_crelu_idempotent(self):
        z = Tensor(RNG.normal(size=10) + 1j * RNG.normal(size=10))
        once = F.crelu(z)
        twice = F.crelu(once)
        np.testing.assert_allclose(once.data, twice.data)

    def test_modrelu_zero_bias_is_identity_for_nonzero(self):
        z = Tensor([1 + 1j, -2 + 0.5j])
        np.testing.assert_allclose(F.modrelu(z, 0.0).data, z.data)

    def test_modrelu_negative_bias_gates_small_magnitudes(self):
        z = Tensor([0.1 + 0.0j, 3 + 4j])
        out = F.modrelu(z, -1.0).data
        assert out[0] == 0
        assert np.abs(out[1]) == pytest.approx(4.0)


class TestFFT:
    def test_fft_ifft_roundtrip(self):
        data = RNG.normal(size=(8, 8)) + 1j * RNG.normal(size=(8, 8))
        out = F.ifft2(F.fft2(Tensor(data)))
        np.testing.assert_allclose(out.data, data, atol=1e-12)

    def test_fft_is_orthonormal(self):
        data = RNG.normal(size=(8, 8))
        spectrum = F.fft2(Tensor(data)).data
        assert np.sum(np.abs(spectrum) ** 2) == pytest.approx(np.sum(data ** 2))

    def test_fftshift_roundtrip(self):
        data = RNG.normal(size=(5, 6)) + 0j
        out = F.ifftshift2(F.fftshift2(Tensor(data)))
        np.testing.assert_allclose(out.data, data)

    def test_fftshift_moves_dc(self):
        data = np.zeros((4, 4), dtype=complex)
        data[0, 0] = 1.0
        shifted = F.fftshift2(Tensor(data)).data
        assert shifted[2, 2] == 1.0


class TestLosses:
    def test_mse_zero_for_identical(self):
        x = Tensor(RNG.normal(size=(3, 3)))
        assert F.mse_loss(x, Tensor(x.data.copy())).item() == pytest.approx(0.0)

    def test_mse_matches_numpy(self):
        a, b = RNG.normal(size=10), RNG.normal(size=10)
        assert F.mse_loss(Tensor(a), Tensor(b)).item() == pytest.approx(np.mean((a - b) ** 2))

    def test_l1_matches_numpy(self):
        a, b = RNG.normal(size=10), RNG.normal(size=10)
        assert F.l1_loss(Tensor(a), Tensor(b)).item() == pytest.approx(np.mean(np.abs(a - b)))

    def test_bce_matches_reference(self):
        logits = RNG.normal(size=20)
        targets = (RNG.random(20) > 0.5).astype(float)
        probabilities = 1 / (1 + np.exp(-logits))
        reference = -np.mean(targets * np.log(probabilities) + (1 - targets) * np.log(1 - probabilities))
        value = F.bce_with_logits_loss(Tensor(logits), Tensor(targets)).item()
        assert value == pytest.approx(reference, rel=1e-6)

    @given(arrays(np.float64, (4, 4), elements=st.floats(-5, 5)),
           arrays(np.float64, (4, 4), elements=st.floats(-5, 5)))
    @settings(max_examples=25, deadline=None)
    def test_mse_is_non_negative_and_symmetric(self, a, b):
        forward = F.mse_loss(Tensor(a), Tensor(b)).item()
        backward = F.mse_loss(Tensor(b), Tensor(a)).item()
        assert forward >= 0
        assert forward == pytest.approx(backward)
