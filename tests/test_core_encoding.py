"""Tests for positional encodings and kernel coordinates (repro.core.encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import (
    IdentityEncoding,
    NeRFEncoding,
    RandomFourierEncoding,
    kernel_coordinates,
    make_encoding,
)


class TestKernelCoordinates:
    def test_shape_and_order(self):
        coords = kernel_coordinates((3, 4))
        assert coords.shape == (12, 2)
        # row-major enumeration: first row index stays 0 for the first 4 entries
        np.testing.assert_allclose(coords[:4, 0], 0.0)

    def test_normalised_to_unit_interval(self):
        coords = kernel_coordinates((5, 7))
        assert coords.min() == 0.0
        assert coords.max() == 1.0

    def test_single_sample_window(self):
        coords = kernel_coordinates((1, 1))
        np.testing.assert_allclose(coords, [[0.0, 0.0]])

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            kernel_coordinates((0, 4))

    @given(n=st.integers(1, 12), m=st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_unique_coordinates(self, n, m):
        coords = kernel_coordinates((n, m))
        assert len({tuple(row) for row in coords}) == n * m


class TestIdentityEncoding:
    def test_output_is_complex_passthrough(self):
        encoding = IdentityEncoding()
        coords = kernel_coordinates((3, 3))
        out = encoding(coords)
        assert out.dtype == np.complex128
        np.testing.assert_allclose(out.real, coords)
        assert encoding.output_dim == 2


class TestNeRFEncoding:
    def test_output_dimension(self):
        encoding = NeRFEncoding(num_frequencies=5)
        assert encoding.output_dim == 20
        out = encoding(kernel_coordinates((4, 4)))
        assert out.shape == (16, 20)

    def test_values_bounded_by_one(self):
        out = NeRFEncoding(num_frequencies=6)(kernel_coordinates((5, 5)))
        assert np.max(np.abs(out)) <= 1.0 + 1e-12

    def test_axis_aligned_structure(self):
        """Each feature depends on exactly one of the two coordinates (Eq. (14))."""
        encoding = NeRFEncoding(num_frequencies=3)
        a = encoding(np.array([[0.3, 0.1]]))
        b = encoding(np.array([[0.3, 0.9]]))
        # features built from the first coordinate are identical
        same = np.isclose(a, b).sum()
        assert same >= a.size // 2

    def test_invalid_frequencies(self):
        with pytest.raises(ValueError):
            NeRFEncoding(num_frequencies=0)

    def test_rejects_bad_coordinate_shape(self):
        with pytest.raises(ValueError):
            NeRFEncoding()(np.zeros((4, 3)))


class TestRandomFourierEncoding:
    def test_output_dimension_and_dtype(self):
        encoding = RandomFourierEncoding(num_features=16, sigma=3.0, seed=0)
        out = encoding(kernel_coordinates((4, 4)))
        assert out.shape == (16, 32)
        assert out.dtype == np.complex128

    def test_complex_lift_factor(self):
        """Each entry is (cos or sin) * (1 + j): real and imaginary parts are equal."""
        out = RandomFourierEncoding(num_features=8, seed=1)(kernel_coordinates((3, 3)))
        np.testing.assert_allclose(out.real, out.imag)

    def test_magnitude_bounded(self):
        out = RandomFourierEncoding(num_features=8, seed=1)(kernel_coordinates((3, 3)))
        assert np.max(np.abs(out)) <= np.sqrt(2.0) + 1e-12

    def test_seeded_reproducibility(self):
        coords = kernel_coordinates((4, 4))
        a = RandomFourierEncoding(num_features=8, seed=3)(coords)
        b = RandomFourierEncoding(num_features=8, seed=3)(coords)
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self):
        coords = kernel_coordinates((4, 4))
        a = RandomFourierEncoding(num_features=8, seed=3)(coords)
        b = RandomFourierEncoding(num_features=8, seed=4)(coords)
        assert not np.allclose(a, b)

    def test_sigma_controls_feature_bandwidth(self):
        """Larger sigma -> faster-varying features across neighbouring coordinates."""
        coords = kernel_coordinates((9, 9))

        def variation(sigma):
            out = RandomFourierEncoding(num_features=32, sigma=sigma, seed=0)(coords).real
            return np.abs(np.diff(out, axis=0)).mean()

        assert variation(16.0) > variation(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomFourierEncoding(num_features=0)
        with pytest.raises(ValueError):
            RandomFourierEncoding(sigma=0.0)

    def test_isotropy_of_frequency_matrix(self):
        """Frequencies are drawn i.i.d. per axis: no preferred axis on average."""
        encoding = RandomFourierEncoding(num_features=512, sigma=5.0, seed=0)
        stds = encoding.frequencies.std(axis=0)
        assert abs(stds[0] - stds[1]) / stds.mean() < 0.2


class TestFactory:
    def test_all_names(self):
        assert isinstance(make_encoding("none"), IdentityEncoding)
        assert isinstance(make_encoding("identity"), IdentityEncoding)
        assert isinstance(make_encoding("nerf", num_frequencies=4), NeRFEncoding)
        assert isinstance(make_encoding("rff", num_features=8), RandomFourierEncoding)
        assert isinstance(make_encoding("gaussian"), RandomFourierEncoding)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_encoding("positional")
