"""Tests for frequency-grid helpers (repro.optics.grid)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optics.grid import centred_indices, crop_centre, embed_centre, make_grid


class TestCentredIndices:
    def test_even_size(self):
        np.testing.assert_array_equal(centred_indices(4), [-2, -1, 0, 1])

    def test_odd_size(self):
        np.testing.assert_array_equal(centred_indices(5), [-2, -1, 0, 1, 2])

    @given(size=st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_zero_at_index_half(self, size):
        indices = centred_indices(size)
        assert indices[size // 2] == 0


class TestMakeGrid:
    def test_dc_at_centre(self):
        grid = make_grid(7, 7, field_size_nm=1000.0, wavelength_nm=193.0, numerical_aperture=1.35)
        assert grid.fx[3, 3] == 0.0
        assert grid.fy[3, 3] == 0.0

    def test_normalisation_by_cutoff(self):
        """One frequency step equals (1/field) / (NA/lambda) in normalised units."""
        grid = make_grid(5, 5, field_size_nm=1000.0, wavelength_nm=193.0, numerical_aperture=1.35)
        expected_step = (1.0 / 1000.0) / (1.35 / 193.0)
        assert grid.fx[0, 3] - grid.fx[0, 2] == pytest.approx(expected_step)

    def test_radius_is_hypot(self):
        grid = make_grid(5, 5, 500.0, 193.0, 1.35)
        np.testing.assert_allclose(grid.radius, np.hypot(grid.fx, grid.fy))

    def test_invalid_field_size(self):
        with pytest.raises(ValueError):
            make_grid(5, 5, 0.0, 193.0, 1.35)

    def test_shape_property(self):
        grid = make_grid(3, 7, 500.0, 193.0, 1.35)
        assert grid.shape == (3, 7)


class TestCropEmbed:
    def test_crop_shape(self):
        out = crop_centre(np.ones((10, 10)), 4, 6)
        assert out.shape == (4, 6)

    def test_crop_too_large_raises(self):
        with pytest.raises(ValueError):
            crop_centre(np.ones((4, 4)), 6, 6)

    def test_embed_too_large_raises(self):
        with pytest.raises(ValueError):
            embed_centre(np.ones((6, 6)), 4, 4)

    def test_crop_keeps_dc_aligned_even_to_odd(self):
        spectrum = np.zeros((8, 8))
        spectrum[4, 4] = 1.0
        cropped = crop_centre(spectrum, 5, 5)
        assert cropped[2, 2] == 1.0

    def test_embed_keeps_dc_aligned_odd_to_even(self):
        block = np.zeros((5, 5))
        block[2, 2] = 1.0
        embedded = embed_centre(block, 8, 8)
        assert embedded[4, 4] == 1.0

    def test_embed_preserves_dtype(self):
        block = np.ones((3, 3), dtype=complex)
        assert embed_centre(block, 5, 5).dtype == np.complex128

    def test_embed_supports_leading_axes(self):
        block = np.ones((2, 3, 3))
        assert embed_centre(block, 7, 7).shape == (2, 7, 7)

    @given(full=st.integers(6, 20), crop=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_crop_embed_roundtrip_preserves_energy(self, full, crop):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(crop, crop))
        embedded = embed_centre(data, full, full)
        recovered = crop_centre(embedded, crop, crop)
        np.testing.assert_allclose(recovered, data)
        assert np.sum(embedded ** 2) == pytest.approx(np.sum(data ** 2))
