"""Tests for the TEMPO / DOINN baseline substitutes (repro.baselines)."""

import numpy as np
import pytest

from repro.baselines import DoinnModel, DoinnNetwork, ImageToImageModel, TempoGenerator, TempoModel
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(31)


def small_tempo(**kwargs):
    defaults = dict(work_resolution=16, base_channels=4, epochs=25, learning_rate=3e-3, seed=0)
    defaults.update(kwargs)
    return TempoModel(**defaults)


def small_doinn(**kwargs):
    defaults = dict(work_resolution=16, base_channels=4, modes=4, epochs=25,
                    learning_rate=3e-3, seed=0)
    defaults.update(kwargs)
    return DoinnModel(**defaults)


class TestNetworks:
    def test_tempo_generator_shape(self):
        network = TempoGenerator(base_channels=4)
        out = network(Tensor(RNG.random((2, 1, 16, 16))))
        assert out.shape == (2, 1, 16, 16)

    def test_doinn_network_shape(self):
        network = DoinnNetwork(base_channels=4, modes=4)
        out = network(Tensor(RNG.random((2, 1, 16, 16))))
        assert out.shape == (2, 1, 16, 16)

    def test_model_names(self):
        assert small_tempo().name == "TEMPO"
        assert small_doinn().name == "DOINN"

    def test_parameter_counts_positive(self):
        assert small_tempo().num_parameters() > 0
        assert small_doinn().num_parameters() > 0
        assert small_tempo().size_megabytes() > 0


class TestTrainingInterface:
    @pytest.fixture(scope="class")
    def training_data(self, request):
        tiny_masks = request.getfixturevalue("tiny_masks")
        tiny_aerials = request.getfixturevalue("tiny_aerials")
        return tiny_masks, tiny_aerials

    def test_invalid_work_resolution(self):
        with pytest.raises(ValueError):
            ImageToImageModel(TempoGenerator(2), work_resolution=0)

    def test_fit_validates_inputs(self, training_data):
        masks, aerials = training_data
        model = small_tempo()
        with pytest.raises(ValueError):
            model.fit(masks[:2], aerials[:1])
        with pytest.raises(ValueError):
            model.fit(masks[:0], aerials[:0])

    def test_tempo_training_reduces_loss(self, training_data):
        masks, aerials = training_data
        model = small_tempo()
        history = model.fit(masks, aerials)
        assert history[-1] < 0.5 * history[0]

    def test_doinn_training_reduces_loss(self, training_data):
        masks, aerials = training_data
        model = small_doinn()
        history = model.fit(masks, aerials)
        assert history[-1] < 0.5 * history[0]

    def test_prediction_interface(self, training_data):
        masks, aerials = training_data
        model = small_doinn()
        model.fit(masks, aerials, epochs=10)
        aerial = model.predict_aerial(masks[0])
        assert aerial.shape == masks[0].shape
        assert np.all(aerial >= 0.0)
        resist = model.predict_resist(masks[0])
        assert set(np.unique(resist)).issubset({0, 1})
        batch = model.predict_batch(masks[:2])
        assert batch.shape == (2, *masks[0].shape)

    def test_predict_rejects_non_2d(self, training_data):
        masks, aerials = training_data
        model = small_tempo()
        model.fit(masks[:2], aerials[:2], epochs=2)
        with pytest.raises(ValueError):
            model.predict_aerial(masks)

    def test_state_dict_roundtrip(self, training_data):
        masks, aerials = training_data
        model = small_tempo()
        model.fit(masks[:2], aerials[:2], epochs=3)
        clone = small_tempo()
        clone.fit(masks[:2], aerials[:2], epochs=1)
        clone.load_state_dict(model.state_dict())
        np.testing.assert_allclose(clone.predict_aerial(masks[0]), model.predict_aerial(masks[0]))

    def test_baseline_worse_than_nitho_on_unseen_family(self, training_data, tiny_simulator,
                                                        tiny_via_masks, trained_tiny_nitho):
        """The paper's central comparison: the image-to-image baseline degrades on an
        unseen mask family while Nitho holds up."""
        from repro.metrics import aerial_metrics

        masks, aerials = training_data
        baseline = small_doinn()
        baseline.fit(masks, aerials)

        golden = np.stack([tiny_simulator.aerial(m) for m in tiny_via_masks[:2]])
        baseline_psnr = aerial_metrics(golden, baseline.predict_batch(tiny_via_masks[:2]))["psnr"]
        nitho_psnr = aerial_metrics(golden, trained_tiny_nitho.predict_batch(tiny_via_masks[:2]))["psnr"]
        assert nitho_psnr > baseline_psnr


class TestAdversarialTempo:
    def test_cgan_training_runs_and_reduces_l2(self, tiny_masks, tiny_aerials):
        model = TempoModel(work_resolution=16, base_channels=4, epochs=8,
                           learning_rate=3e-3, adversarial=True, seed=0)
        history = model.fit(tiny_masks, tiny_aerials)
        assert len(history) == 8
        assert history[-1] < history[0]
        assert model.discriminator is not None
