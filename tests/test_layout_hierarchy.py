"""Hierarchical GDSII reader (repro.layout.hierarchy): conformance suite.

The headline invariant: a :class:`HierarchicalLayoutReader` over a cell
graph is **bit-for-bit** equal to the dense flatten of that graph — every
window, every backend (numpy / scipy), every precision (float64 / float32),
serial and sharded, in-memory and streaming — and shares the flat reader's
canonical digest (campaign identity), while never materialising the flat
raster or expanding instance arrays eagerly.  Plus the PR's synergy
payoff: an AREF array of one cell images exactly one unique tile through
the tile-result cache.
"""

import os
import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    EngineSpec,
    ExecutionEngine,
    ShardedExecutor,
    TileResultCache,
)
from repro.engine import tile_cache as tile_cache_module
from repro.layout import (
    GeometryLayoutReader,
    HierarchicalLayoutReader,
    LayoutFormatError,
    load_layout_file,
    is_layout_reader,
    read_layout_shapes,
    shapes_extent_nm,
    write_gds,
)
from repro.layout.gdsii import GDSBoundary, GDSCell, GDSReference, parse_gds
from repro.layout.hierarchy import Transform
from repro.optics.simulator import OpticsConfig

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
HIER4 = os.path.join(DATA_DIR, "hier4.gds")
AREF_GRID = os.path.join(DATA_DIR, "aref_grid.gds")

CONFIG = OpticsConfig(tile_size_px=32, pixel_size_nm=8.0, max_socs_order=8)


@pytest.fixture(scope="module")
def hier_reader() -> HierarchicalLayoutReader:
    return load_layout_file(HIER4, pixel_size_nm=8.0)


@pytest.fixture(scope="module")
def hier_flat(hier_reader) -> GeometryLayoutReader:
    return hier_reader.flatten()


@pytest.fixture(scope="module")
def hier_dense(hier_flat) -> np.ndarray:
    return hier_flat.materialise()


def _rect(layer, x, y, w, h):
    return GDSBoundary(layer, ((x, y), (x + w, y), (x + w, y + h),
                               (x, y + h)))


class TestTransform:
    @pytest.mark.parametrize("quarter_turns,reflect,mag", [
        (0, False, 1.0), (1, False, 1.0), (2, True, 2.0), (3, True, 0.5),
    ])
    def test_place_matches_matrix_model(self, quarter_turns, reflect, mag):
        """reflect about x, then magnify, then rotate, then translate."""
        theta = quarter_turns * np.pi / 2.0
        rotation = np.array([[np.cos(theta), -np.sin(theta)],
                             [np.sin(theta), np.cos(theta)]])
        flip = np.diag([1.0, -1.0 if reflect else 1.0])
        matrix = rotation @ (mag * flip)
        placed = Transform.place(5.0, -3.0, mag=mag,
                                 quarter_turns=quarter_turns,
                                 reflect=reflect)
        for point in ((1.0, 0.0), (0.0, 1.0), (2.5, -7.0)):
            expected = matrix @ np.array(point) + np.array([5.0, -3.0])
            np.testing.assert_allclose(placed.apply(*point), expected,
                                       atol=1e-12)

    def test_compose_is_function_composition(self):
        outer = Transform.place(10.0, 4.0, quarter_turns=1)
        inner = Transform.place(-2.0, 6.0, mag=2.0, reflect=True)
        composed = outer.compose(inner)
        for point in ((0.0, 0.0), (3.0, 5.0), (-1.0, 2.0)):
            assert composed.apply(*point) == outer.apply(*inner.apply(*point))

    def test_box_maps_are_consistent(self):
        transform = Transform.place(7.0, -2.0, mag=3.0, quarter_turns=3,
                                    reflect=True)
        box = (1.0, 2.0, 4.0, 8.0)
        forward = transform.apply_box(*box)
        np.testing.assert_allclose(transform.invert_box(*forward), box,
                                   atol=1e-9)


class TestHierarchyResolution:
    def test_loads_as_reader(self, hier_reader):
        assert isinstance(hier_reader, HierarchicalLayoutReader)
        assert is_layout_reader(hier_reader)
        assert hier_reader.depth >= 4          # the >= 4-level fixture
        assert hier_reader.cell_count == 5
        assert hier_reader.top_cell == "CHIP"
        # 4 BLOCKs x (2 ROWs x (3 PAIRs x 2 UNITs + 3 PAIRs) + 2 UNITs
        # + 2 ROWs + 1 BLOCK) + ... : arrays counted arithmetically
        assert hier_reader.instance_count == 93

    @given(row=st.integers(-8, 72), col=st.integers(-8, 72),
           height=st.integers(1, 48), width=st.integers(1, 48))
    @settings(max_examples=30, deadline=None)
    def test_any_window_equals_flatten_window(self, hier_reader, hier_flat,
                                              row, col, height, width):
        np.testing.assert_array_equal(
            hier_reader.read_window(row, col, height, width),
            hier_flat.read_window(row, col, height, width))

    def test_materialise_equals_flatten(self, hier_reader, hier_dense):
        np.testing.assert_array_equal(hier_reader.materialise(), hier_dense)
        assert hier_dense.any()

    def test_digest_parity_with_flatten(self, hier_reader, hier_flat):
        """Hierarchical and flat spellings share one campaign identity."""
        assert hier_reader.digest() == hier_flat.digest()
        finer = load_layout_file(HIER4, pixel_size_nm=4.0)
        assert finer.digest() != hier_reader.digest()

    def test_window_is_empty_agrees_with_rasterisation(self, hier_reader):
        for row in range(0, hier_reader.shape[0], 16):
            for col in range(0, hier_reader.shape[1], 16):
                empty = hier_reader.window_is_empty(row, col, 16, 16)
                assert empty == (not hier_reader.read_window(
                    row, col, 16, 16).any())

    def test_window_cost_is_flat_in_instance_count(self):
        """One tile of a 64-instance array touches ~one instance's worth of
        rectangles, not the whole array (the laziness observable)."""
        reader = load_layout_file(AREF_GRID, pixel_size_nm=8.0)
        assert reader.instance_count == 65  # GRID + 8x8 CHECKERs
        total_rects = 8 * 8 * 3
        reader.read_window(32, 32, 32, 32)
        assert 0 < reader.last_candidates <= 12 < total_rects

    def test_explicit_top_cell(self):
        library = parse_gds(HIER4)
        row_only = HierarchicalLayoutReader(library, pixel_size_nm=8.0,
                                            top="ROW")
        assert row_only.top_cell == "ROW"
        assert row_only.depth == 3
        with pytest.raises(LayoutFormatError, match="not defined"):
            HierarchicalLayoutReader(library, pixel_size_nm=8.0, top="NOPE")

    def test_ambiguous_top_cell_requires_choice(self):
        cells = {
            "A": GDSCell("A", [_rect(1, 0, 0, 8, 8)], []),
            "B": GDSCell("B", [_rect(1, 0, 0, 16, 16)], []),
        }
        library = parse_gds(write_gds(cells), name="two_tops")
        with pytest.raises(LayoutFormatError, match="ambiguous top cell"):
            HierarchicalLayoutReader(library, pixel_size_nm=8.0)
        picked = HierarchicalLayoutReader(library, pixel_size_nm=8.0,
                                          top="B")
        assert picked.shape == (2, 2)

    def test_cycle_detection(self):
        cells = {
            "T": GDSCell("T", [], [GDSReference("A", (0, 0))]),
            "A": GDSCell("A", [_rect(1, 0, 0, 8, 8)],
                         [GDSReference("B", (16, 0))]),
            "B": GDSCell("B", [], [GDSReference("A", (16, 0))]),
        }
        library = parse_gds(write_gds(cells), name="cyclic")
        with pytest.raises(LayoutFormatError, match="cycle"):
            HierarchicalLayoutReader(library, pixel_size_nm=8.0, top="T")

    def test_fine_database_unit_is_transparent(self):
        """0.5 nm database units: same nm geometry, same raster, same
        identity as the 1 nm spelling."""
        coarse = load_layout_file(os.path.join(DATA_DIR,
                                               "flat_boundaries.gds"),
                                  pixel_size_nm=4.0)
        fine = load_layout_file(os.path.join(DATA_DIR, "units_fine.gds"),
                                pixel_size_nm=4.0)
        np.testing.assert_array_equal(coarse.materialise(),
                                      fine.materialise())
        assert coarse.digest() == fine.digest()

    def test_read_layout_shapes_flattens_binary_gds(self):
        shapes, extent = read_layout_shapes(HIER4)
        assert extent is None
        assert shapes and all(layer.isdigit() for layer in shapes)
        assert shapes_extent_nm(shapes) == 568.0


@st.composite
def cell_hierarchies(draw):
    """Random Manhattan cell graphs: a leaf of rectangles under 1-3 levels
    of SREF / AREF placements with rotation, reflection and magnification.
    Chained so exactly one top cell exists."""
    levels = draw(st.integers(min_value=1, max_value=3))
    cells = {}
    boundaries = []
    for _ in range(draw(st.integers(1, 3))):
        x = 4 * draw(st.integers(0, 16))
        y = 4 * draw(st.integers(0, 16))
        w = 4 * draw(st.integers(1, 8))
        h = 4 * draw(st.integers(1, 8))
        boundaries.append(_rect(draw(st.integers(1, 2)), x, y, w, h))
    cells["C0"] = GDSCell("C0", boundaries, [])
    for level in range(1, levels + 1):
        references = []
        for index in range(draw(st.integers(1, 3))):
            # the first reference chains to the previous level, so the
            # library keeps a single unreferenced (top) cell
            target = level - 1 if index == 0 else draw(
                st.integers(0, level - 1))
            kwargs = dict(
                mag=draw(st.sampled_from([1.0, 2.0])),
                quarter_turns=draw(st.integers(0, 3)),
                reflect=draw(st.booleans()))
            origin = (4 * draw(st.integers(-8, 32)),
                      4 * draw(st.integers(-8, 32)))
            if draw(st.booleans()):
                kwargs.update(
                    columns=draw(st.integers(1, 3)),
                    rows=draw(st.integers(1, 3)),
                    column_vector=(8 * draw(st.integers(1, 12)), 0),
                    row_vector=(0, 8 * draw(st.integers(1, 12))))
            references.append(GDSReference(f"C{target}", origin, **kwargs))
        cells[f"C{level}"] = GDSCell(f"C{level}", [], references)
    unit_nm = draw(st.sampled_from([1.0, 0.5]))
    pixel = draw(st.sampled_from([4.0, 8.0]))
    return cells, unit_nm, pixel


class TestRoundTripProperty:
    """write_gds -> load_layout_file -> reader == dense flatten, always."""

    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("gds_roundtrip")

    @given(data=cell_hierarchies(), index=st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_random_hierarchy_roundtrip(self, out_dir, data, index):
        cells, unit_nm, pixel = data
        path = str(out_dir / f"case_{index}.gds")
        emitted = write_gds(cells, path, unit_nm=unit_nm)
        # byte-stable emitter: parse -> re-emit is the identity
        assert write_gds(parse_gds(path)) == emitted
        reader = load_layout_file(path, pixel_size_nm=pixel,
                                  shape=(48, 48))
        assert isinstance(reader, HierarchicalLayoutReader)
        flat = reader.flatten()
        np.testing.assert_array_equal(reader.materialise(),
                                      flat.materialise())
        assert reader.digest() == flat.digest()
        for row, col, height, width in ((0, 0, 17, 23), (-4, 9, 21, 13),
                                        (30, 30, 30, 30)):
            np.testing.assert_array_equal(
                reader.read_window(row, col, height, width),
                flat.read_window(row, col, height, width))


class TestEngineWiring:
    """Imaging the hierarchy == imaging its dense flatten, bit for bit."""

    @pytest.mark.parametrize("backend_name,precision", [
        ("numpy", "float64"), ("numpy", "float32"),
        ("scipy", "float64"), ("scipy", "float32"),
    ])
    def test_engine_image_layout_bitwise(self, hier_reader, hier_dense,
                                         backend_name, precision):
        if backend_name == "scipy":
            pytest.importorskip("scipy.fft")
        engine = ExecutionEngine.for_optics(CONFIG, fft_backend=backend_name,
                                            precision=precision)
        ref = engine.image_layout(hier_dense, tile_px=32, guard_px=8)
        for kwargs in ({}, {"streaming": True}, {"batch_tiles": 2}):
            imaged = engine.image_layout(hier_reader, tile_px=32,
                                         guard_px=8, **kwargs)
            assert imaged.num_tiles == ref.num_tiles
            np.testing.assert_array_equal(np.asarray(imaged.aerial),
                                          ref.aerial)
            np.testing.assert_array_equal(np.asarray(imaged.resist),
                                          ref.resist)

    def test_sharded_image_layout_bitwise(self, hier_reader, hier_dense):
        engine = ExecutionEngine.for_optics(CONFIG)
        ref = engine.image_layout(hier_dense, tile_px=32, guard_px=8)
        with ShardedExecutor(num_workers=1) as executor:
            imaged = executor.image_layout(EngineSpec(config=CONFIG),
                                           hier_reader, tile_px=32,
                                           guard_px=8)
        np.testing.assert_array_equal(np.asarray(imaged.aerial), ref.aerial)
        np.testing.assert_array_equal(np.asarray(imaged.resist), ref.resist)


class TestTileCacheSynergy:
    """An N x M AREF of one cell images exactly one unique tile."""

    def test_serial_array_images_one_unique_tile(self):
        reader = load_layout_file(AREF_GRID, pixel_size_nm=8.0)
        assert reader.shape == (256, 256)  # 8 x 8 tiles of 32 px
        cache = TileResultCache()
        cached_engine = ExecutionEngine.for_optics(CONFIG, tile_cache=cache)
        plain_engine = ExecutionEngine.for_optics(CONFIG, tile_cache=False)
        result = cached_engine.image_layout(reader, tile_px=32, guard_px=0)
        reference = plain_engine.image_layout(reader, tile_px=32, guard_px=0)
        np.testing.assert_array_equal(result.aerial, reference.aerial)
        np.testing.assert_array_equal(result.resist, reference.resist)
        assert cache.stats.tiles == 64
        assert cache.stats.misses == 1        # == unique cells in the array
        assert cache.stats.hit_rate >= 0.9

    def test_sharded_array_images_one_unique_tile(self):
        reader = load_layout_file(AREF_GRID, pixel_size_nm=8.0)
        cache = TileResultCache()
        spec = EngineSpec(config=CONFIG)
        with ShardedExecutor(num_workers=2, tile_cache=cache) as executor:
            result = executor.image_layout(spec, reader, tile_px=32,
                                           guard_px=0)
        reference = ExecutionEngine.for_optics(CONFIG).image_layout(
            reader, tile_px=32, guard_px=0)
        np.testing.assert_array_equal(np.asarray(result.aerial),
                                      reference.aerial)
        assert cache.stats.tiles == 64
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate >= 0.9

    @pytest.mark.parametrize("scheduler_args", [
        [],                        # serial engine path
        ["--scheduler", "pool"],   # sharded executor path
    ], ids=["serial", "sharded"])
    def test_cli_image_layout_reports_array_reuse(self, tmp_path,
                                                  monkeypatch, capsys,
                                                  scheduler_args):
        from repro.cli import main

        monkeypatch.setattr(tile_cache_module, "_default_cache", None)
        output = str(tmp_path / "aerial.npz")
        assert main(["image-layout", "--input", AREF_GRID,
                     "--tile-size", "32", "--guard", "0",
                     "--pixel-size-nm", "8", "--tile-cache",
                     "--output", output] + scheduler_args) == 0
        out = capsys.readouterr().out
        match = re.search(r"tile cache: (\d+)/(\d+) tiles served from cache "
                          r"\(([\d.]+)% hit rate, (\d+) imaged\)", out)
        assert match, out
        served, tiles, rate, imaged = match.groups()
        assert int(imaged) == 1               # == unique cells
        assert int(tiles) == 64
        assert float(rate) >= 90.0
        assert os.path.exists(output)


class TestCLIEndToEnd:
    def test_binary_gds_loads_from_cli(self, hier_dense, tmp_path, capsys):
        """`image-layout --input chip.gds` works end to end."""
        from repro.cli import main

        output = str(tmp_path / "chip.npz")
        assert main(["image-layout", "--input", HIER4, "--tile-size", "32",
                     "--pixel-size-nm", "8", "--guard", "8",
                     "--output", output]) == 0
        assert "streamed" in capsys.readouterr().out
        with np.load(output) as archive:
            np.testing.assert_array_equal(archive["mask"], hier_dense)
            assert archive["aerial"].shape == hier_dense.shape
            assert archive["resist"].shape == hier_dense.shape
